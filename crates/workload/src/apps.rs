//! Closed-loop application workload engines.
//!
//! The fio-style [`crate::AddressStream`] is *open-loop*: offsets pour
//! out at whatever rate the host's queue-depth window admits, with no
//! dependency between operations. Real services are *closed-loop*:
//! each logical client keeps at most one request chain outstanding,
//! thinks between transactions, and orders dependent I/O (a
//! read-modify-write's write, a commit record behind its reads, a
//! checkpoint behind a drained scan). That feedback loop is what
//! couples tenant behavior to device behavior — throttle a closed-loop
//! app and its *arrival rate* drops, which open-loop streams cannot
//! express.
//!
//! Four engines model the paper-adjacent service mix:
//!
//! * [`KvEngine`] — YCSB-like key-value store: zipfian keys, a
//!   configurable read / read-modify-write mix, per-client think time.
//! * [`OltpEngine`] — TPC-C-like OLTP: a few random reads per
//!   transaction followed by one sequential log write that acts as the
//!   commit barrier (issued only after the reads complete, fsync-style).
//! * [`FileServerEngine`] — filebench-style file server:
//!   create/read/append/delete over a simulated file population that
//!   the operations themselves mutate.
//! * [`MlIngestEngine`] — ML-ingest scan: large sequential reads kept
//!   `window` deep, with periodic checkpoints that drain the scan and
//!   then write serially (each checkpoint write barriers on the last).
//!
//! All engines implement [`AppEngine`]. The host polls
//! [`AppEngine::next_op`] whenever the app has a free in-flight slot
//! and reflects every completion back through
//! [`AppEngine::on_complete`]; think-time pauses surface as
//! [`AppPoll::WaitUntil`] wakes, dependency stalls as
//! [`AppPoll::Blocked`] (the next completion un-blocks). Engines draw
//! all randomness from one owned [`DetRng`], so a run is a pure
//! function of `(seed, config)` — the determinism bedrock the engine's
//! byte-identity tests extend over closed-loop apps.

use blkio::{AccessPattern, IoOp};
use simcore::{DetRng, SimDuration, SimTime};

/// One application-level I/O operation, ready to submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppOp {
    /// Read or write.
    pub op: IoOp,
    /// Access pattern hint for the device model.
    pub pattern: AccessPattern,
    /// Byte offset on the target device.
    pub offset: u64,
    /// Transfer length in bytes.
    pub len: u32,
    /// Engine-private completion token; the host hands it back verbatim
    /// in [`AppEngine::on_complete`].
    pub token: u64,
}

/// What the engine wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppPoll {
    /// Submit this operation now.
    Op(AppOp),
    /// Nothing issuable yet, but something becomes ready at the given
    /// instant (think-time expiry): wake then.
    WaitUntil(SimTime),
    /// Every ready client is waiting on an in-flight completion; the
    /// next [`AppEngine::on_complete`] is the wake source.
    Blocked,
}

/// A closed-loop application workload engine.
///
/// Contract with the host:
///
/// * `next_op` is polled while the app has a free in-flight slot; the
///   host never holds more than [`AppEngine::window`] ops outstanding.
/// * Every op returned eventually gets exactly one `on_complete` with
///   its token (`ok == false` when the I/O exhausted its retries).
/// * A `WaitUntil(t)` answer is only returned with `t` in the future;
///   `Blocked` is only returned while at least one op is outstanding —
///   so the loop can never deadlock.
pub trait AppEngine {
    /// The next operation, or why there is none.
    fn next_op(&mut self, now: SimTime) -> AppPoll;
    /// Feedback: the op issued with `token` finished (`ok == false`
    /// means it failed back to the application after retries).
    fn on_complete(&mut self, token: u64, ok: bool, now: SimTime);
    /// Maximum ops the engine wants outstanding at once.
    fn window(&self) -> u32;
    /// Ops currently issued but not yet completed.
    fn outstanding(&self) -> u32;
    /// `(issued, completed, failed)` op counts since construction.
    fn op_counts(&self) -> (u64, u64, u64);
}

/// Configuration of the YCSB-like key-value engine.
#[derive(Debug, Clone, PartialEq)]
pub struct KvConfig {
    /// Concurrent closed-loop clients (= the outstanding-op window).
    pub window: u32,
    /// Fraction of transactions that are plain reads; the rest are
    /// read-modify-writes (read, then write-back on completion).
    pub read_fraction: f64,
    /// Zipf exponent for key popularity (0 = uniform).
    pub theta: f64,
    /// Value size in bytes (one key = one value = one I/O).
    pub value_size: u32,
    /// Per-client pause between transactions.
    pub think: SimDuration,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            window: 16,
            read_fraction: 0.95,
            theta: 0.99,
            value_size: 4096,
            think: SimDuration::from_micros(20),
        }
    }
}

/// Configuration of the TPC-C-like OLTP engine.
#[derive(Debug, Clone, PartialEq)]
pub struct OltpConfig {
    /// Concurrent transactions (= the outstanding-op window).
    pub window: u32,
    /// Random data-page reads per transaction, before the commit.
    pub reads_per_txn: u32,
    /// Data-page read size in bytes.
    pub read_size: u32,
    /// Commit record size: one sequential log write per transaction,
    /// issued only after the reads complete (the fsync barrier).
    pub log_write_size: u32,
    /// Per-client pause between transactions.
    pub think: SimDuration,
}

impl Default for OltpConfig {
    fn default() -> Self {
        OltpConfig {
            window: 8,
            reads_per_txn: 4,
            read_size: 16 * 1024,
            log_write_size: 16 * 1024,
            think: SimDuration::from_micros(50),
        }
    }
}

/// Configuration of the filebench-style file-server engine.
#[derive(Debug, Clone, PartialEq)]
pub struct FileServerConfig {
    /// Concurrent worker threads (= the outstanding-op window).
    pub window: u32,
    /// Initial file population size.
    pub files: u32,
    /// Bytes appended per append operation.
    pub append_size: u32,
    /// Per-worker pause between operations.
    pub think: SimDuration,
}

impl Default for FileServerConfig {
    fn default() -> Self {
        FileServerConfig {
            window: 8,
            files: 256,
            append_size: 16 * 1024,
            think: SimDuration::from_micros(30),
        }
    }
}

/// Configuration of the ML-ingest scan engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MlIngestConfig {
    /// Outstanding sequential reads the scan keeps in flight.
    pub window: u32,
    /// Scan chunk size in bytes.
    pub read_size: u32,
    /// Chunks between checkpoints.
    pub checkpoint_every: u32,
    /// Size of each checkpoint write in bytes.
    pub checkpoint_size: u32,
    /// Serial writes per checkpoint (each barriers on the previous).
    pub checkpoint_writes: u32,
}

impl Default for MlIngestConfig {
    fn default() -> Self {
        MlIngestConfig {
            window: 32,
            read_size: 1024 * 1024,
            checkpoint_every: 64,
            checkpoint_size: 256 * 1024,
            checkpoint_writes: 4,
        }
    }
}

/// Declarative description of a closed-loop engine: pure data, cheap to
/// clone, `Debug`-stable (it participates in scenario cache keys).
/// Instantiate a running engine with [`AppModelSpec::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum AppModelSpec {
    /// YCSB-like key-value store.
    Kv(KvConfig),
    /// TPC-C-like OLTP.
    Oltp(OltpConfig),
    /// Filebench-style file server.
    FileServer(FileServerConfig),
    /// ML-ingest sequential scan with checkpoints.
    MlIngest(MlIngestConfig),
}

impl AppModelSpec {
    /// The configured outstanding-op window.
    #[must_use]
    pub fn window(&self) -> u32 {
        match self {
            AppModelSpec::Kv(c) => c.window,
            AppModelSpec::Oltp(c) => c.window,
            AppModelSpec::FileServer(c) => c.window,
            AppModelSpec::MlIngest(c) => c.window,
        }
    }

    /// Stable lower-case kind token (the DSL's `workload =` vocabulary).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AppModelSpec::Kv(_) => "kv",
            AppModelSpec::Oltp(_) => "oltp",
            AppModelSpec::FileServer(_) => "fileserver",
            AppModelSpec::MlIngest(_) => "mlscan",
        }
    }

    /// Instantiates the running engine over a device of
    /// `capacity_bytes`, drawing all randomness from `rng`.
    #[must_use]
    pub fn build(&self, rng: DetRng, capacity_bytes: u64) -> AppModel {
        match self {
            AppModelSpec::Kv(c) => AppModel::Kv(KvEngine::new(c.clone(), rng, capacity_bytes)),
            AppModelSpec::Oltp(c) => {
                AppModel::Oltp(OltpEngine::new(c.clone(), rng, capacity_bytes))
            }
            AppModelSpec::FileServer(c) => {
                AppModel::FileServer(FileServerEngine::new(c.clone(), rng, capacity_bytes))
            }
            AppModelSpec::MlIngest(c) => {
                AppModel::MlIngest(MlIngestEngine::new(c.clone(), capacity_bytes))
            }
        }
    }
}

/// A running closed-loop engine (enum dispatch, mirroring the
/// scheduler's `SchedKind` → `Scheduler` idiom).
#[derive(Debug)]
pub enum AppModel {
    /// YCSB-like key-value store.
    Kv(KvEngine),
    /// TPC-C-like OLTP.
    Oltp(OltpEngine),
    /// Filebench-style file server.
    FileServer(FileServerEngine),
    /// ML-ingest sequential scan.
    MlIngest(MlIngestEngine),
}

macro_rules! dispatch {
    ($self:ident, $m:ident ( $($arg:expr),* )) => {
        match $self {
            AppModel::Kv(e) => e.$m($($arg),*),
            AppModel::Oltp(e) => e.$m($($arg),*),
            AppModel::FileServer(e) => e.$m($($arg),*),
            AppModel::MlIngest(e) => e.$m($($arg),*),
        }
    };
}

impl AppEngine for AppModel {
    fn next_op(&mut self, now: SimTime) -> AppPoll {
        dispatch!(self, next_op(now))
    }
    fn on_complete(&mut self, token: u64, ok: bool, now: SimTime) {
        dispatch!(self, on_complete(token, ok, now))
    }
    fn window(&self) -> u32 {
        dispatch!(self, window())
    }
    fn outstanding(&self) -> u32 {
        dispatch!(self, outstanding())
    }
    fn op_counts(&self) -> (u64, u64, u64) {
        dispatch!(self, op_counts())
    }
}

/// Shared issued/completed/failed accounting.
#[derive(Debug, Default)]
struct OpCounts {
    issued: u64,
    completed: u64,
    failed: u64,
}

impl OpCounts {
    fn issue(&mut self) {
        self.issued += 1;
    }
    fn finish(&mut self, ok: bool) {
        if ok {
            self.completed += 1;
        } else {
            self.failed += 1;
        }
    }
    fn outstanding(&self) -> u32 {
        (self.issued - self.completed - self.failed) as u32
    }
    fn as_tuple(&self) -> (u64, u64, u64) {
        (self.issued, self.completed, self.failed)
    }
}

/// Zipf-skewed rank in `[0, n)` via continuous CDF inversion (the same
/// technique as [`crate::AddressStream`]'s zipf mode), degenerating to
/// uniform at `theta == 0`.
fn zipf_rank(rng: &mut DetRng, n: u64, theta: f64) -> u64 {
    let u = rng.f64();
    if theta <= f64::EPSILON {
        return ((u * n as f64) as u64).min(n - 1);
    }
    let s = 1.0 - theta;
    let rank = if (s.abs()) < 1e-9 {
        // theta == 1: the CDF is logarithmic.
        ((n as f64).powf(u) - 1.0).max(0.0)
    } else {
        (((n as f64).powf(s) - 1.0) * u + 1.0).powf(1.0 / s) - 1.0
    };
    (rank as u64).min(n - 1)
}

/// Scatters a logical id over the block space so hot ranks do not
/// cluster physically (matching the stream generator's scatter).
fn scatter(id: u64, blocks: u64) -> u64 {
    id.wrapping_mul(0x9E37_79B9_7F4A_7C15) % blocks.max(1)
}

/// One closed-loop client slot shared by the transactional engines:
/// at most one op in flight, a queue of dependent follow-up ops for the
/// current transaction, and a think-time gate for the next one.
#[derive(Debug)]
struct Client {
    /// Earliest instant the client may issue again.
    ready_at: SimTime,
    /// `true` while an op is in flight (token = client index).
    in_flight: bool,
    /// Remaining dependent ops of the current transaction, issued one
    /// at a time in order — each barriers on the previous completion.
    cont: Vec<AppOp>,
}

impl Client {
    fn new() -> Self {
        Client {
            ready_at: SimTime::ZERO,
            in_flight: false,
            cont: Vec::new(),
        }
    }
}

/// Polls a client array: returns the lowest-index issuable client, or
/// the earliest future ready time. The caller generates the op.
fn poll_clients(clients: &[Client], now: SimTime) -> Result<usize, AppPoll> {
    let mut next_ready: Option<SimTime> = None;
    for (ci, c) in clients.iter().enumerate() {
        if c.in_flight {
            continue;
        }
        if c.ready_at > now {
            next_ready = Some(next_ready.map_or(c.ready_at, |t| t.min(c.ready_at)));
            continue;
        }
        return Ok(ci);
    }
    Err(match next_ready {
        Some(t) => AppPoll::WaitUntil(t),
        None => AppPoll::Blocked,
    })
}

/// Shared completion path for the transactional engines: frees the
/// client slot, drops the rest of an aborted transaction, and arms the
/// think timer when the transaction is done.
fn client_complete(clients: &mut [Client], token: u64, ok: bool, now: SimTime, think: SimDuration) {
    let c = &mut clients[token as usize];
    debug_assert!(c.in_flight, "completion for an idle client");
    c.in_flight = false;
    if !ok {
        // The transaction aborts: its remaining dependent ops never
        // issue (a failed read cannot feed its write-back).
        c.cont.clear();
    }
    if c.cont.is_empty() {
        c.ready_at = now + think;
    } else {
        c.ready_at = now;
    }
}

/// YCSB-like key-value engine. See the module docs.
#[derive(Debug)]
pub struct KvEngine {
    cfg: KvConfig,
    rng: DetRng,
    clients: Vec<Client>,
    /// Number of distinct keys (device capacity / value size, capped).
    keys: u64,
    counts: OpCounts,
}

impl KvEngine {
    /// Creates the engine over a device of `capacity_bytes`.
    #[must_use]
    pub fn new(cfg: KvConfig, rng: DetRng, capacity_bytes: u64) -> Self {
        let keys = (capacity_bytes / u64::from(cfg.value_size.max(1))).max(1);
        let clients = (0..cfg.window).map(|_| Client::new()).collect();
        KvEngine {
            cfg,
            rng,
            clients,
            keys,
            counts: OpCounts::default(),
        }
    }

    fn begin_txn(&mut self, ci: usize) -> AppOp {
        let key = zipf_rank(&mut self.rng, self.keys, self.cfg.theta);
        let offset = scatter(key, self.keys) * u64::from(self.cfg.value_size);
        let token = ci as u64;
        let len = self.cfg.value_size;
        let read = AppOp {
            op: IoOp::Read,
            pattern: AccessPattern::Random,
            offset,
            len,
            token,
        };
        if !self.rng.chance(self.cfg.read_fraction) {
            // Read-modify-write: the write-back issues only after the
            // read completes.
            self.clients[ci].cont.push(AppOp {
                op: IoOp::Write,
                ..read
            });
        }
        read
    }
}

impl AppEngine for KvEngine {
    fn next_op(&mut self, now: SimTime) -> AppPoll {
        match poll_clients(&self.clients, now) {
            Ok(ci) => {
                let op = match self.clients[ci].cont.pop() {
                    Some(op) => op,
                    None => self.begin_txn(ci),
                };
                self.clients[ci].in_flight = true;
                self.counts.issue();
                AppPoll::Op(op)
            }
            Err(poll) => poll,
        }
    }

    fn on_complete(&mut self, token: u64, ok: bool, now: SimTime) {
        self.counts.finish(ok);
        client_complete(&mut self.clients, token, ok, now, self.cfg.think);
    }

    fn window(&self) -> u32 {
        self.cfg.window
    }
    fn outstanding(&self) -> u32 {
        self.counts.outstanding()
    }
    fn op_counts(&self) -> (u64, u64, u64) {
        self.counts.as_tuple()
    }
}

/// TPC-C-like OLTP engine. See the module docs.
#[derive(Debug)]
pub struct OltpEngine {
    cfg: OltpConfig,
    rng: DetRng,
    clients: Vec<Client>,
    /// Shared log head: commit records append here sequentially,
    /// wrapping within the log region.
    log_head: u64,
    /// Bytes reserved for the log at the start of the address space.
    log_region: u64,
    /// Data region size (everything past the log).
    data_bytes: u64,
    counts: OpCounts,
}

impl OltpEngine {
    /// Creates the engine over a device of `capacity_bytes`.
    #[must_use]
    pub fn new(cfg: OltpConfig, rng: DetRng, capacity_bytes: u64) -> Self {
        let log_region = (capacity_bytes / 8).max(u64::from(cfg.log_write_size.max(1)));
        let clients = (0..cfg.window).map(|_| Client::new()).collect();
        OltpEngine {
            data_bytes: capacity_bytes.saturating_sub(log_region).max(1),
            log_region,
            log_head: 0,
            cfg,
            rng,
            clients,
            counts: OpCounts::default(),
        }
    }

    fn begin_txn(&mut self, ci: usize) -> AppOp {
        let token = ci as u64;
        // The commit record: pushed first so it pops *last* — it only
        // issues after every read of the transaction completed (the
        // fsync-style write barrier).
        let commit_off = self.log_head;
        self.log_head = (self.log_head + u64::from(self.cfg.log_write_size)) % self.log_region;
        self.clients[ci].cont.push(AppOp {
            op: IoOp::Write,
            pattern: AccessPattern::Sequential,
            offset: commit_off,
            len: self.cfg.log_write_size,
            token,
        });
        let pages = (self.data_bytes / u64::from(self.cfg.read_size.max(1))).max(1);
        let mut first = None;
        for _ in 0..self.cfg.reads_per_txn.max(1) {
            let page = self.rng.below(pages);
            let op = AppOp {
                op: IoOp::Read,
                pattern: AccessPattern::Random,
                offset: self.log_region + page * u64::from(self.cfg.read_size),
                len: self.cfg.read_size,
                token,
            };
            if first.is_none() {
                first = Some(op);
            } else {
                // Remaining reads follow the commit push, so they pop
                // before it (LIFO), in between the first read and the
                // commit.
                self.clients[ci].cont.push(op);
            }
        }
        first.expect("at least one read per txn")
    }
}

impl AppEngine for OltpEngine {
    fn next_op(&mut self, now: SimTime) -> AppPoll {
        match poll_clients(&self.clients, now) {
            Ok(ci) => {
                let op = match self.clients[ci].cont.pop() {
                    Some(op) => op,
                    None => self.begin_txn(ci),
                };
                self.clients[ci].in_flight = true;
                self.counts.issue();
                AppPoll::Op(op)
            }
            Err(poll) => poll,
        }
    }

    fn on_complete(&mut self, token: u64, ok: bool, now: SimTime) {
        self.counts.finish(ok);
        client_complete(&mut self.clients, token, ok, now, self.cfg.think);
    }

    fn window(&self) -> u32 {
        self.cfg.window
    }
    fn outstanding(&self) -> u32 {
        self.counts.outstanding()
    }
    fn op_counts(&self) -> (u64, u64, u64) {
        self.counts.as_tuple()
    }
}

/// One simulated file in the file-server population.
#[derive(Debug, Clone, Copy)]
struct SimFile {
    /// Stable id; the physical base offset is a scatter of it.
    id: u64,
    /// Current size in bytes.
    size: u32,
}

/// Filebench-style file-server engine. See the module docs.
#[derive(Debug)]
pub struct FileServerEngine {
    cfg: FileServerConfig,
    rng: DetRng,
    clients: Vec<Client>,
    /// Live population, mutated by create/append/delete.
    files: Vec<SimFile>,
    /// Next file id to mint.
    next_id: u64,
    /// Slots the scattered base offsets index into.
    slots: u64,
    counts: OpCounts,
}

/// Per-file address-space slot (files never grow past this, so
/// scattered base offsets cannot produce unbounded lengths).
const FILE_SLOT: u64 = 1 << 20;

impl FileServerEngine {
    /// Creates the engine with its initial file population.
    #[must_use]
    pub fn new(cfg: FileServerConfig, mut rng: DetRng, capacity_bytes: u64) -> Self {
        let slots = (capacity_bytes / FILE_SLOT).max(1);
        let mut files = Vec::with_capacity(cfg.files as usize);
        for id in 0..u64::from(cfg.files) {
            // 4 KiB – 128 KiB initial sizes.
            let size = 4096 * rng.range(1, 33) as u32;
            files.push(SimFile { id, size });
        }
        let clients = (0..cfg.window).map(|_| Client::new()).collect();
        FileServerEngine {
            next_id: u64::from(cfg.files),
            cfg,
            rng,
            clients,
            files,
            slots,
            counts: OpCounts::default(),
        }
    }

    fn base(&self, id: u64) -> u64 {
        scatter(id, self.slots) * FILE_SLOT
    }

    /// One whole-file or metadata operation; the population mutates at
    /// issue time (deterministic regardless of completion order).
    fn begin_op(&mut self, ci: usize) -> AppOp {
        let token = ci as u64;
        let kind = self.rng.below(100);
        // 10 % create, 50 % read, 30 % append, 10 % delete — but the
        // population never shrinks below half its initial size (delete
        // degrades to create), and reads/appends/deletes on an empty
        // population degrade to creates.
        let floor = u64::from(self.cfg.files / 2);
        if kind < 10 || self.files.is_empty() || (kind >= 90 && (self.files.len() as u64) < floor) {
            let id = self.next_id;
            self.next_id += 1;
            let size = 4096 * self.rng.range(1, 33) as u32;
            self.files.push(SimFile { id, size });
            return AppOp {
                op: IoOp::Write,
                pattern: AccessPattern::Sequential,
                offset: self.base(id),
                len: size,
                token,
            };
        }
        let idx = self.rng.below(self.files.len() as u64) as usize;
        if kind < 60 {
            let f = self.files[idx];
            AppOp {
                op: IoOp::Read,
                pattern: AccessPattern::Sequential,
                offset: self.base(f.id),
                len: f.size,
                token,
            }
        } else if kind < 90 {
            let append = self.cfg.append_size;
            let f = &mut self.files[idx];
            let at = u64::from(f.size);
            f.size = (f.size.saturating_add(append)).min((FILE_SLOT - 1) as u32);
            let base = self.base(self.files[idx].id);
            AppOp {
                op: IoOp::Write,
                pattern: AccessPattern::Sequential,
                offset: base + at.min(FILE_SLOT - u64::from(append.max(1))),
                len: append,
                token,
            }
        } else {
            let f = self.files.swap_remove(idx);
            // Deletion is a metadata update: one small random write.
            AppOp {
                op: IoOp::Write,
                pattern: AccessPattern::Random,
                offset: self.base(f.id),
                len: 4096,
                token,
            }
        }
    }
}

impl AppEngine for FileServerEngine {
    fn next_op(&mut self, now: SimTime) -> AppPoll {
        match poll_clients(&self.clients, now) {
            Ok(ci) => {
                let op = match self.clients[ci].cont.pop() {
                    Some(op) => op,
                    None => self.begin_op(ci),
                };
                self.clients[ci].in_flight = true;
                self.counts.issue();
                AppPoll::Op(op)
            }
            Err(poll) => poll,
        }
    }

    fn on_complete(&mut self, token: u64, ok: bool, now: SimTime) {
        self.counts.finish(ok);
        client_complete(&mut self.clients, token, ok, now, self.cfg.think);
    }

    fn window(&self) -> u32 {
        self.cfg.window
    }
    fn outstanding(&self) -> u32 {
        self.counts.outstanding()
    }
    fn op_counts(&self) -> (u64, u64, u64) {
        self.counts.as_tuple()
    }
}

/// Scan/checkpoint phase of the ML-ingest engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IngestMode {
    /// Streaming sequential reads, `window` deep.
    Scan,
    /// Checkpoint due: no new reads; waiting for in-flight reads to
    /// drain (the barrier).
    Drain,
    /// Writing the checkpoint, one serial write at a time.
    Checkpoint {
        /// Writes left in this checkpoint.
        remaining: u32,
    },
}

/// ML-ingest scan engine. See the module docs.
#[derive(Debug)]
pub struct MlIngestEngine {
    cfg: MlIngestConfig,
    mode: IngestMode,
    /// Next scan offset (wraps within the scan region).
    next_offset: u64,
    /// Scan region size (capacity minus the checkpoint region).
    scan_bytes: u64,
    /// Next checkpoint write offset (sequential in its own region).
    cp_offset: u64,
    /// Base of the checkpoint region (top of the address space).
    cp_base: u64,
    /// Checkpoint region size.
    cp_bytes: u64,
    /// Scan chunks issued since the last checkpoint.
    chunks_since_cp: u32,
    counts: OpCounts,
}

impl MlIngestEngine {
    /// Creates the engine over a device of `capacity_bytes`.
    #[must_use]
    pub fn new(cfg: MlIngestConfig, capacity_bytes: u64) -> Self {
        let cp_bytes = (capacity_bytes / 16).max(u64::from(cfg.checkpoint_size.max(1)));
        let scan_bytes = capacity_bytes
            .saturating_sub(cp_bytes)
            .max(u64::from(cfg.read_size.max(1)));
        MlIngestEngine {
            mode: IngestMode::Scan,
            next_offset: 0,
            scan_bytes,
            cp_offset: 0,
            cp_base: scan_bytes,
            cp_bytes,
            chunks_since_cp: 0,
            cfg,
            counts: OpCounts::default(),
        }
    }
}

impl AppEngine for MlIngestEngine {
    fn next_op(&mut self, _now: SimTime) -> AppPoll {
        loop {
            match self.mode {
                IngestMode::Scan => {
                    if self.chunks_since_cp >= self.cfg.checkpoint_every {
                        self.mode = IngestMode::Drain;
                        continue;
                    }
                    let offset = self.next_offset;
                    self.next_offset =
                        (self.next_offset + u64::from(self.cfg.read_size)) % self.scan_bytes;
                    self.chunks_since_cp += 1;
                    self.counts.issue();
                    return AppPoll::Op(AppOp {
                        op: IoOp::Read,
                        pattern: AccessPattern::Sequential,
                        offset,
                        len: self.cfg.read_size,
                        token: 0,
                    });
                }
                IngestMode::Drain => {
                    if self.counts.outstanding() > 0 {
                        return AppPoll::Blocked;
                    }
                    self.mode = IngestMode::Checkpoint {
                        remaining: self.cfg.checkpoint_writes.max(1),
                    };
                }
                IngestMode::Checkpoint { remaining } => {
                    if self.counts.outstanding() > 0 {
                        // Serial checkpoint writes: each barriers on
                        // the previous one.
                        return AppPoll::Blocked;
                    }
                    if remaining == 0 {
                        self.chunks_since_cp = 0;
                        self.mode = IngestMode::Scan;
                        continue;
                    }
                    let offset = self.cp_base + self.cp_offset;
                    self.cp_offset =
                        (self.cp_offset + u64::from(self.cfg.checkpoint_size)) % self.cp_bytes;
                    self.mode = IngestMode::Checkpoint {
                        remaining: remaining - 1,
                    };
                    self.counts.issue();
                    return AppPoll::Op(AppOp {
                        op: IoOp::Write,
                        pattern: AccessPattern::Sequential,
                        offset,
                        len: self.cfg.checkpoint_size,
                        token: 1,
                    });
                }
            }
        }
    }

    fn on_complete(&mut self, _token: u64, ok: bool, _now: SimTime) {
        self.counts.finish(ok);
    }

    fn window(&self) -> u32 {
        self.cfg.window
    }
    fn outstanding(&self) -> u32 {
        self.counts.outstanding()
    }
    fn op_counts(&self) -> (u64, u64, u64) {
        self.counts.as_tuple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(spec: &AppModelSpec, steps: u32, seed: u64) -> Vec<AppOp> {
        let mut e = spec.build(DetRng::new(seed), 1 << 30);
        let mut now = SimTime::ZERO;
        let mut pending: Vec<u64> = Vec::new();
        let mut ops = Vec::new();
        let window = e.window();
        for _ in 0..steps {
            while e.outstanding() < window {
                match e.next_op(now) {
                    AppPoll::Op(op) => {
                        ops.push(op);
                        pending.push(op.token);
                    }
                    AppPoll::WaitUntil(t) => {
                        assert!(t > now, "WaitUntil must be in the future");
                        now = t;
                    }
                    AppPoll::Blocked => {
                        assert!(
                            e.outstanding() > 0,
                            "Blocked with nothing outstanding deadlocks"
                        );
                        break;
                    }
                }
            }
            if let Some(tok) = pending.pop() {
                now += SimDuration::from_micros(70);
                e.on_complete(tok, true, now);
            }
        }
        ops
    }

    fn all_specs() -> Vec<AppModelSpec> {
        vec![
            AppModelSpec::Kv(KvConfig::default()),
            AppModelSpec::Oltp(OltpConfig::default()),
            AppModelSpec::FileServer(FileServerConfig::default()),
            AppModelSpec::MlIngest(MlIngestConfig::default()),
        ]
    }

    #[test]
    fn engines_are_deterministic_per_seed() {
        for spec in all_specs() {
            let a = drive(&spec, 300, 7);
            let b = drive(&spec, 300, 7);
            assert_eq!(a, b, "{} not deterministic", spec.kind());
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn kv_mixes_reads_and_writeback_writes() {
        let spec = AppModelSpec::Kv(KvConfig {
            read_fraction: 0.5,
            ..KvConfig::default()
        });
        let ops = drive(&spec, 500, 3);
        let writes = ops.iter().filter(|o| o.op == IoOp::Write).count();
        assert!(writes > 50, "RMW writes missing: {writes}");
        assert!(writes < ops.len(), "reads missing");
    }

    #[test]
    fn oltp_commit_follows_its_reads() {
        let spec = AppModelSpec::Oltp(OltpConfig {
            window: 1,
            reads_per_txn: 3,
            ..OltpConfig::default()
        });
        let ops = drive(&spec, 400, 5);
        // With one client the op stream is strictly txn-ordered:
        // 3 reads then 1 sequential log write, repeating.
        for chunk in ops.chunks_exact(4) {
            assert!(chunk[..3].iter().all(|o| o.op == IoOp::Read));
            assert_eq!(chunk[3].op, IoOp::Write);
            assert_eq!(chunk[3].pattern, AccessPattern::Sequential);
        }
        // Log writes advance sequentially.
        let logs: Vec<u64> = ops
            .iter()
            .filter(|o| o.op == IoOp::Write)
            .map(|o| o.offset)
            .collect();
        for w in logs.windows(2) {
            assert!(w[1] > w[0] || w[1] == 0, "log not sequential: {w:?}");
        }
    }

    #[test]
    fn fileserver_population_stays_bounded() {
        let spec = AppModelSpec::FileServer(FileServerConfig {
            files: 32,
            ..FileServerConfig::default()
        });
        let mut e = match spec.build(DetRng::new(11), 1 << 30) {
            AppModel::FileServer(e) => e,
            _ => unreachable!(),
        };
        let mut now = SimTime::ZERO;
        for _ in 0..2_000 {
            match e.next_op(now) {
                AppPoll::Op(op) => {
                    now += SimDuration::from_micros(40);
                    e.on_complete(op.token, true, now);
                }
                AppPoll::WaitUntil(t) => now = t,
                AppPoll::Blocked => unreachable!("serial drive never blocks"),
            }
            assert!(e.files.len() >= 16, "population collapsed");
        }
    }

    #[test]
    fn mlscan_checkpoints_barrier_the_scan() {
        let spec = AppModelSpec::MlIngest(MlIngestConfig {
            window: 4,
            checkpoint_every: 8,
            checkpoint_writes: 2,
            ..MlIngestConfig::default()
        });
        let ops = drive(&spec, 200, 1);
        let first_write = ops.iter().position(|o| o.op == IoOp::Write).expect("cp");
        // Exactly checkpoint_every reads precede the first checkpoint.
        assert_eq!(first_write, 8);
        assert_eq!(ops[first_write + 1].op, IoOp::Write);
        assert_eq!(ops[first_write + 2].op, IoOp::Read, "scan resumes");
    }

    #[test]
    fn conservation_after_drain() {
        for spec in all_specs() {
            let mut e = spec.build(DetRng::new(9), 1 << 30);
            let mut now = SimTime::ZERO;
            let mut pending = Vec::new();
            for step in 0..1_000u64 {
                if e.outstanding() < e.window() {
                    match e.next_op(now) {
                        AppPoll::Op(op) => pending.push(op.token),
                        AppPoll::WaitUntil(t) => now = t,
                        AppPoll::Blocked => {}
                    }
                }
                // Fail every 7th completion; complete out of order.
                if pending.len() > 2 || (step % 3 == 0 && !pending.is_empty()) {
                    let tok = pending.remove(step as usize % pending.len());
                    now += SimDuration::from_micros(25);
                    e.on_complete(tok, step % 7 != 0, now);
                }
            }
            for (i, tok) in pending.drain(..).enumerate() {
                e.on_complete(tok, i % 2 == 0, now);
            }
            let (issued, completed, failed) = e.op_counts();
            assert_eq!(issued, completed + failed, "{} leaked ops", spec.kind());
            assert_eq!(e.outstanding(), 0);
        }
    }
}
