//! Deterministic address/operation streams derived from a job spec.

use blkio::{AccessPattern, IoOp};
use simcore::DetRng;

use crate::{JobSpec, RwKind};

/// Produces the `(op, pattern, offset)` sequence for one job over one
/// device's address space.
///
/// Sequential streams walk the space block by block and wrap; random
/// streams pick block-aligned offsets uniformly. Mixed (`randrw`) streams
/// flip a weighted coin per I/O, like fio's `rwmixread`.
///
/// # Example
///
/// ```
/// use workload::{AddressStream, JobSpec, RwKind};
/// use simcore::DetRng;
///
/// let spec = JobSpec::builder("seq").rw(RwKind::SeqRead).block_size(4096).build();
/// let mut s = AddressStream::new(&spec, 1 << 20, DetRng::new(1));
/// let (op, _pat, off0) = s.next_io();
/// let (_, _, off1) = s.next_io();
/// assert!(op.is_read());
/// assert_eq!(off1, off0 + 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AddressStream {
    rw: RwKind,
    block_size: u32,
    blocks: u64,
    next_block: u64,
    rng: DetRng,
    /// Precomputed Zipf inversion scale `norm * (1 - θ)`, where `norm`
    /// is the continuous approximation of the generalized harmonic
    /// number (rejection inversion over a truncated series).
    zipf_scale: f64,
    /// Precomputed Zipf inversion exponent `1 / (1 - θ)`.
    zipf_exp: f64,
}

impl AddressStream {
    /// Creates a stream over a device of `capacity_bytes`, using `rng` for
    /// random placement and read/write mixing.
    ///
    /// # Panics
    ///
    /// Panics if the device cannot hold even one block.
    #[must_use]
    pub fn new(spec: &JobSpec, capacity_bytes: u64, rng: DetRng) -> Self {
        let blocks = capacity_bytes / u64::from(spec.block_size());
        assert!(blocks > 0, "device smaller than one block");
        let (zipf_scale, zipf_exp) = match spec.rw() {
            RwKind::ZipfRead { theta } => {
                assert!(
                    theta > 0.0 && theta != 1.0,
                    "zipf theta must be > 0 and != 1"
                );
                // ∫ x^-θ dx over [1, N+1] — continuous approximation of
                // the generalized harmonic number. The scale folds the
                // `(1 - θ)` factor in so sampling is one fma + one powf.
                let n = blocks as f64;
                let norm = ((n + 1.0).powf(1.0 - theta) - 1.0) / (1.0 - theta);
                (norm * (1.0 - theta), 1.0 / (1.0 - theta))
            }
            _ => (0.0, 0.0),
        };
        AddressStream {
            rw: spec.rw(),
            block_size: spec.block_size(),
            blocks,
            next_block: 0,
            rng,
            zipf_scale,
            zipf_exp,
        }
    }

    /// Samples a Zipf-distributed block index in `[0, blocks)` by
    /// inverting the continuous CDF (O(1), no tables).
    fn zipf_block(&mut self) -> u64 {
        let u = self.rng.f64();
        let x = (u * self.zipf_scale + 1.0).powf(self.zipf_exp);
        // Scatter ranks over the address space deterministically so the
        // hot set is not physically contiguous.
        let rank = (x as u64).clamp(1, self.blocks) - 1;
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.blocks
    }

    /// The next I/O to issue.
    pub fn next_io(&mut self) -> (IoOp, AccessPattern, u64) {
        let bs = u64::from(self.block_size);
        match self.rw {
            RwKind::SeqRead | RwKind::SeqWrite => {
                let off = self.next_block * bs;
                self.next_block = (self.next_block + 1) % self.blocks;
                let op = if self.rw == RwKind::SeqRead {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                (op, AccessPattern::Sequential, off)
            }
            RwKind::RandRead | RwKind::RandWrite => {
                let off = self.rng.below(self.blocks) * bs;
                let op = if self.rw == RwKind::RandRead {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                (op, AccessPattern::Random, off)
            }
            RwKind::RandRw { read_frac } => {
                let off = self.rng.below(self.blocks) * bs;
                let op = if self.rng.chance(read_frac) {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                (op, AccessPattern::Random, off)
            }
            RwKind::ZipfRead { .. } => {
                let off = self.zipf_block() * bs;
                (IoOp::Read, AccessPattern::Random, off)
            }
        }
    }

    /// Appends the next `n` I/Os to `out` in one pass.
    ///
    /// Matches on the stream kind once and runs a tight per-kind loop,
    /// drawing from the RNG in exactly the order [`next_io`] would:
    /// the produced tuples — and the stream state afterwards, RNG
    /// included — are bit-for-bit identical to `n` `next_io()` calls.
    /// The batched-equivalence proptest pins that contract down.
    ///
    /// [`next_io`]: AddressStream::next_io
    pub fn fill(&mut self, out: &mut Vec<(IoOp, AccessPattern, u64)>, n: usize) {
        out.reserve(n);
        let bs = u64::from(self.block_size);
        match self.rw {
            RwKind::SeqRead | RwKind::SeqWrite => {
                let op = if self.rw == RwKind::SeqRead {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                let mut block = self.next_block;
                for _ in 0..n {
                    out.push((op, AccessPattern::Sequential, block * bs));
                    block = (block + 1) % self.blocks;
                }
                self.next_block = block;
            }
            RwKind::RandRead | RwKind::RandWrite => {
                let op = if self.rw == RwKind::RandRead {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                for _ in 0..n {
                    out.push((op, AccessPattern::Random, self.rng.below(self.blocks) * bs));
                }
            }
            RwKind::RandRw { read_frac } => {
                for _ in 0..n {
                    // Offset before the read/write coin, same as next_io.
                    let off = self.rng.below(self.blocks) * bs;
                    let op = if self.rng.chance(read_frac) {
                        IoOp::Read
                    } else {
                        IoOp::Write
                    };
                    out.push((op, AccessPattern::Random, off));
                }
            }
            RwKind::ZipfRead { .. } => {
                for _ in 0..n {
                    out.push((IoOp::Read, AccessPattern::Random, self.zipf_block() * bs));
                }
            }
        }
    }
}

/// A refillable chunk of pregenerated arrivals for one job.
///
/// The engine's issue path consumes `(op, pattern, offset)` tuples from
/// here instead of calling [`AddressStream::next_io`] per I/O; when the
/// chunk runs dry it refills in one [`AddressStream::fill`] pass. The
/// *time* component of each arrival is not stored — issue times are the
/// app's wake frontier, which the engine's tournament merge carries as
/// the per-app key (see DESIGN.md §17).
///
/// Pregeneration is safe because each job's stream RNG is private
/// (forked once at build time): drawing samples early changes when RNG
/// state advances, but never the sequence of tuples the app observes.
///
/// # Example
///
/// ```
/// use workload::{ArrivalBatch, AddressStream, JobSpec, RwKind};
/// use simcore::DetRng;
///
/// let spec = JobSpec::builder("r").rw(RwKind::RandRead).build();
/// let mut s = AddressStream::new(&spec, 1 << 20, DetRng::new(7));
/// let mut reference = s.clone();
/// let mut batch = ArrivalBatch::new();
/// let (op, pat, off) = batch.next(&mut s);
/// assert_eq!((op, pat, off), reference.next_io());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalBatch {
    buf: Vec<(IoOp, AccessPattern, u64)>,
    pos: usize,
}

/// How many arrivals one refill pregenerates. Large enough to amortize
/// the per-chunk dispatch, small enough that the buffer stays within a
/// few cache lines: at fleet scale thousands of tenants interleave, so
/// every consume touches a cold buffer and an oversized chunk costs
/// more in misses than it saves in dispatch (tuples are 24 bytes each).
const BATCH_CHUNK: usize = 8;

impl ArrivalBatch {
    /// An empty batch; the first [`next`](ArrivalBatch::next) refills it.
    #[must_use]
    pub fn new() -> Self {
        ArrivalBatch {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The next arrival, refilling from `stream` when the chunk is dry.
    #[inline]
    pub fn next(&mut self, stream: &mut AddressStream) -> (IoOp, AccessPattern, u64) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            stream.fill(&mut self.buf, BATCH_CHUNK);
        }
        let io = self.buf[self.pos];
        self.pos += 1;
        io
    }

    /// Pregenerated arrivals not yet consumed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl Default for ArrivalBatch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobSpec;

    fn stream(rw: RwKind, bs: u32, cap: u64, seed: u64) -> AddressStream {
        let spec = JobSpec::builder("t").rw(rw).block_size(bs).build();
        AddressStream::new(&spec, cap, DetRng::new(seed))
    }

    #[test]
    fn sequential_walks_and_wraps() {
        let mut s = stream(RwKind::SeqWrite, 4096, 3 * 4096, 1);
        let offs: Vec<u64> = (0..5).map(|_| s.next_io().2).collect();
        assert_eq!(offs, vec![0, 4096, 8192, 0, 4096]);
        assert!(s.next_io().0.is_write());
    }

    #[test]
    fn random_offsets_are_block_aligned_and_in_range() {
        let mut s = stream(RwKind::RandRead, 4096, 1 << 24, 2);
        for _ in 0..1000 {
            let (op, pat, off) = s.next_io();
            assert!(op.is_read());
            assert_eq!(pat, AccessPattern::Random);
            assert_eq!(off % 4096, 0);
            assert!(off < 1 << 24);
        }
    }

    #[test]
    fn mix_respects_read_fraction() {
        let mut s = stream(RwKind::RandRw { read_frac: 0.7 }, 4096, 1 << 24, 3);
        let n = 20_000;
        let reads = (0..n).filter(|_| s.next_io().0.is_read()).count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<_> = {
            let mut s = stream(RwKind::RandRead, 4096, 1 << 20, 42);
            (0..100).map(|_| s.next_io().2).collect()
        };
        let b: Vec<_> = {
            let mut s = stream(RwKind::RandRead, 4096, 1 << 20, 42);
            (0..100).map(|_| s.next_io().2).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_concentrates_on_hot_blocks() {
        use std::collections::HashMap;
        let mut s = stream(RwKind::ZipfRead { theta: 1.2 }, 4096, 1 << 30, 7);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            let (op, _, off) = s.next_io();
            assert!(op.is_read());
            assert_eq!(off % 4096, 0);
            *counts.entry(off).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        // With θ = 1.2 over ~260k blocks, the 10 hottest blocks should
        // hold a large share of 50k accesses; uniform would give ~2.
        assert!(top10 > n / 4, "top-10 hot blocks got {top10}/{n}");
    }

    #[test]
    fn zipf_is_deterministic() {
        let mut a = stream(RwKind::ZipfRead { theta: 1.1 }, 4096, 1 << 24, 3);
        let mut b = stream(RwKind::ZipfRead { theta: 1.1 }, 4096, 1 << 24, 3);
        for _ in 0..100 {
            assert_eq!(a.next_io(), b.next_io());
        }
    }

    #[test]
    #[should_panic(expected = "device smaller than one block")]
    fn tiny_device_panics() {
        let _ = stream(RwKind::RandRead, 1 << 20, 4096, 1);
    }

    #[test]
    fn fill_matches_next_io_for_every_kind() {
        let kinds = [
            RwKind::SeqRead,
            RwKind::SeqWrite,
            RwKind::RandRead,
            RwKind::RandWrite,
            RwKind::RandRw { read_frac: 0.7 },
            RwKind::ZipfRead { theta: 1.2 },
        ];
        for kind in kinds {
            let mut batched = stream(kind, 4096, 3 * 4096, 9);
            let mut incremental = batched.clone();
            let mut buf = Vec::new();
            batched.fill(&mut buf, 200);
            let reference: Vec<_> = (0..200).map(|_| incremental.next_io()).collect();
            assert_eq!(buf, reference, "{kind:?} tuples diverge");
            // Stream state (RNG included) must match bit-for-bit too.
            assert_eq!(batched, incremental, "{kind:?} state diverges");
        }
    }

    #[test]
    fn arrival_batch_replays_the_stream_in_order() {
        let mut s = stream(RwKind::RandRw { read_frac: 0.5 }, 4096, 1 << 20, 11);
        let mut reference = s.clone();
        let mut batch = ArrivalBatch::new();
        for _ in 0..500 {
            assert_eq!(batch.next(&mut s), reference.next_io());
        }
        assert!(batch.pending() < 64);
    }
}
