//! Submission-engine CPU-cost profiles.
//!
//! The paper uses io_uring for §IV–V and libaio for §VI (fio + io_uring had
//! throttling issues). In the simulation an engine is a per-I/O CPU cost
//! profile: how many nanoseconds of core time one submission and one
//! completion reaping costs.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// The asynchronous I/O submission engine an app uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IoEngine {
    /// `io_uring`: the fastest path (shared rings, batched syscalls).
    #[default]
    IoUring,
    /// `libaio`: slightly more per-I/O CPU (one `io_submit`/`io_getevents`
    /// syscall pair per batch, additional copies).
    Libaio,
}

impl IoEngine {
    /// CPU time to submit one I/O (VFS + block-layer entry, ring doorbell).
    ///
    /// Calibrated so that a single core saturates at a few hundred
    /// thousand 4 KiB IOPS, matching the paper's testbed behaviour
    /// (Fig. 3d: ~78 % of one core with 8 LC-apps and no knob).
    #[must_use]
    pub fn submit_cost(self) -> SimDuration {
        match self {
            IoEngine::IoUring => SimDuration::from_nanos(3_900),
            IoEngine::Libaio => SimDuration::from_nanos(4_500),
        }
    }

    /// CPU time to reap and deliver one completion.
    #[must_use]
    pub fn complete_cost(self) -> SimDuration {
        match self {
            IoEngine::IoUring => SimDuration::from_nanos(3_700),
            IoEngine::Libaio => SimDuration::from_nanos(4_300),
        }
    }

    /// fio-style name.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            IoEngine::IoUring => "io_uring",
            IoEngine::Libaio => "libaio",
        }
    }
}

impl std::fmt::Display for IoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_uring_is_cheaper() {
        assert!(IoEngine::IoUring.submit_cost() < IoEngine::Libaio.submit_cost());
        assert!(IoEngine::IoUring.complete_cost() < IoEngine::Libaio.complete_cost());
    }

    #[test]
    fn default_is_io_uring() {
        assert_eq!(IoEngine::default(), IoEngine::IoUring);
    }

    #[test]
    fn names() {
        assert_eq!(IoEngine::IoUring.to_string(), "io_uring");
        assert_eq!(IoEngine::Libaio.to_string(), "libaio");
    }

    #[test]
    fn per_io_cost_is_single_digit_micros() {
        for e in [IoEngine::IoUring, IoEngine::Libaio] {
            let total = e.submit_cost() + e.complete_cost();
            assert!(total.as_nanos() > 1_000 && total.as_nanos() < 20_000);
        }
    }
}
