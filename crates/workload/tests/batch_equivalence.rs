//! Property tests: batched arrival generation must be indistinguishable
//! from incremental generation. For arbitrary job specs and chunk
//! sizes, [`AddressStream::fill`] produces the same tuples as the same
//! count of `next_io()` calls — bit-for-bit, including the stream's RNG
//! state afterwards — and [`ArrivalBatch`] replays them in order
//! regardless of how refills land. This is the contract that lets the
//! engine pregenerate arrivals without perturbing a single golden byte.

use proptest::prelude::*;

use simcore::DetRng;
use workload::{AddressStream, ArrivalBatch, JobSpec, RwKind};

/// SplitMix64 finalizer — decorrelates per-field draws from one seed.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds an arbitrary stream from one seed: any of the six rw kinds,
/// block sizes from 512 B to 64 KiB, capacities from a handful of
/// blocks (exercising sequential wrap) up to a few GiB.
fn arb_stream(seed: u64) -> AddressStream {
    let rw = match mix(seed) % 6 {
        0 => RwKind::SeqRead,
        1 => RwKind::SeqWrite,
        2 => RwKind::RandRead,
        3 => RwKind::RandWrite,
        4 => RwKind::RandRw {
            // read_frac in [0, 1] inclusive, hitting both pure ends.
            read_frac: (mix(seed ^ 1) % 101) as f64 / 100.0,
        },
        _ => RwKind::ZipfRead {
            // theta in (0, 2], skipping the excluded value 1.0.
            theta: match (mix(seed ^ 2) % 20) + 1 {
                10 => 1.05,
                t => t as f64 / 10.0,
            },
        },
    };
    let block_size = 512u32 << (mix(seed ^ 3) % 8); // 512 B ..= 64 KiB
    let blocks = 1 + mix(seed ^ 4) % 100_000;
    let spec = JobSpec::builder("p").rw(rw).block_size(block_size).build();
    AddressStream::new(
        &spec,
        blocks * u64::from(block_size),
        DetRng::new(mix(seed ^ 5)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// fill(n₁), fill(n₂), … over arbitrary chunk sizes (including 0)
    /// equals the same total of next_io() calls, and leaves the two
    /// streams in identical states — RNG bits included.
    #[test]
    fn fill_chunks_equal_incremental(
        seed in 0u64..=u64::MAX,
        chunks in proptest::collection::vec(0usize..130, 1..12),
    ) {
        let mut batched = arb_stream(seed);
        let mut incremental = batched.clone();
        let mut got = Vec::new();
        let mut want = Vec::new();
        for &n in &chunks {
            batched.fill(&mut got, n);
            for _ in 0..n {
                want.push(incremental.next_io());
            }
            // State must agree at every chunk boundary, not just at the
            // end — a compensating error pair would pass an end check.
            prop_assert_eq!(&batched, &incremental);
        }
        prop_assert_eq!(got, want);
    }

    /// ArrivalBatch::next() consumed any number of times replays the
    /// exact next_io() sequence across refill boundaries.
    #[test]
    fn arrival_batch_equals_incremental(
        seed in 0u64..=u64::MAX,
        count in 0usize..700,
    ) {
        let mut stream = arb_stream(seed);
        let mut incremental = stream.clone();
        let mut batch = ArrivalBatch::new();
        for i in 0..count {
            prop_assert_eq!(batch.next(&mut stream), incremental.next_io(), "arrival {}", i);
        }
    }
}
