//! Closed-loop conformance suite: for arbitrary application models,
//! completion orders, and failure patterns, every engine must uphold
//! the contract the host engine relies on:
//!
//! * **conservation** — after a full drain, `issued == completed +
//!   failed` and nothing is outstanding,
//! * **bounded window** — outstanding ops never exceed the configured
//!   window, at every step, not just at the end,
//! * **liveness** — `Blocked` is only ever returned while ops are in
//!   flight (a `Blocked` with an empty pipeline would deadlock the
//!   host, which re-polls only on completions),
//! * **seed purity** — the op sequence is a function of (config, seed,
//!   completion schedule) alone: replaying the same schedule yields
//!   bit-identical ops and counters.

use proptest::prelude::*;

use simcore::{DetRng, SimDuration, SimTime};
use workload::{
    AppEngine, AppModelSpec, AppOp, FileServerConfig, KvConfig, MlIngestConfig, OltpConfig,
};

/// SplitMix64 finalizer — decorrelates per-field draws from one seed.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An arbitrary model spec from one seed: any of the four engines with
/// varied windows, mixes, and think times (including zero think).
fn arb_spec(seed: u64) -> AppModelSpec {
    let window = 1 + (mix(seed ^ 1) % 32) as u32;
    let think = SimDuration::from_micros(mix(seed ^ 2) % 50);
    match mix(seed) % 4 {
        0 => AppModelSpec::Kv(KvConfig {
            window,
            read_fraction: (mix(seed ^ 3) % 101) as f64 / 100.0,
            theta: (1 + mix(seed ^ 4) % 15) as f64 / 10.0,
            value_size: 512 << (mix(seed ^ 5) % 5),
            think,
        }),
        1 => AppModelSpec::Oltp(OltpConfig {
            window,
            reads_per_txn: 1 + (mix(seed ^ 3) % 8) as u32,
            read_size: 4096,
            log_write_size: 512 << (mix(seed ^ 4) % 6),
            think,
        }),
        2 => AppModelSpec::FileServer(FileServerConfig {
            window,
            files: 4 + (mix(seed ^ 3) % 300) as u32,
            append_size: 4096,
            think,
        }),
        _ => AppModelSpec::MlIngest(MlIngestConfig {
            window,
            read_size: 1 << (12 + mix(seed ^ 3) % 9),
            checkpoint_every: 1 + (mix(seed ^ 4) % 32) as u32,
            checkpoint_size: 4096,
            checkpoint_writes: 1 + (mix(seed ^ 5) % 4) as u32,
        }),
    }
}

const CAPACITY: u64 = 64 * 1024 * 1024;

/// Outcome of one simulated host session against an engine.
#[derive(Debug, PartialEq)]
struct Session {
    ops: Vec<AppOp>,
    counts: (u64, u64, u64),
}

/// Drives an engine like the host does — polls until `Blocked` or
/// `WaitUntil`, completes in an RNG-chosen (out-of-order) fashion with
/// RNG-chosen failures — asserting the window and liveness invariants
/// at every step, then drains and checks conservation.
fn drive(spec: &AppModelSpec, seed: u64, steps: usize) -> Session {
    let mut engine = spec.build(DetRng::new(mix(seed ^ 0xA11CE)), CAPACITY);
    let mut sched = DetRng::new(mix(seed ^ 0x5EED));
    let mut now = SimTime::ZERO;
    let mut inflight: Vec<u64> = Vec::new();
    let mut ops = Vec::new();
    let window = engine.window();
    assert!(window >= 1);

    let complete_one =
        |engine: &mut dyn AppEngine, inflight: &mut Vec<u64>, now: SimTime, sched: &mut DetRng| {
            // Out-of-order completion: pick any in-flight op, fail ~1 in 8.
            let idx = sched.range(0, inflight.len() as u64) as usize;
            let token = inflight.swap_remove(idx);
            engine.on_complete(token, !sched.chance(0.125), now);
        };

    for _ in 0..steps {
        // Honor the host contract: next_op is only polled while a
        // window slot is free (the host caps inflight at iodepth ==
        // window); with a full pipeline the host waits for completions.
        if engine.outstanding() >= window {
            complete_one(&mut engine, &mut inflight, now, &mut sched);
            now += SimDuration::from_nanos(1 + sched.range(0, 10_000));
            continue;
        }
        match engine.next_op(now) {
            workload::AppPoll::Op(op) => {
                // Tokens need not be globally unique (the scanner tags
                // every read with the same token); the host pairs them
                // with request ids, so the driver just queues them.
                inflight.push(op.token);
                ops.push(op);
                let out = engine.outstanding();
                assert!(out <= window, "outstanding {out} exceeds window {window}");
                assert_eq!(out as usize, inflight.len(), "outstanding disagrees");
            }
            workload::AppPoll::WaitUntil(t) => {
                // Think time: jump to the requested instant (the host
                // clamps to now+1ns; strictly advancing is equivalent).
                now = t.max(now + SimDuration::from_nanos(1));
                if !inflight.is_empty() && sched.chance(0.5) {
                    complete_one(&mut engine, &mut inflight, now, &mut sched);
                }
            }
            workload::AppPoll::Blocked => {
                assert!(
                    !inflight.is_empty(),
                    "Blocked with nothing in flight would deadlock the host"
                );
                complete_one(&mut engine, &mut inflight, now, &mut sched);
                now += SimDuration::from_nanos(1 + sched.range(0, 20_000));
            }
        }
        // Occasionally complete even while the engine could still issue,
        // interleaving submissions and completions like a busy device.
        if !inflight.is_empty() && sched.chance(0.3) {
            complete_one(&mut engine, &mut inflight, now, &mut sched);
            now += SimDuration::from_nanos(sched.range(0, 5_000));
        }
    }

    // Drain: complete everything still in flight.
    while !inflight.is_empty() {
        complete_one(&mut engine, &mut inflight, now, &mut sched);
        now += SimDuration::from_nanos(100);
    }
    assert_eq!(engine.outstanding(), 0, "drained engine still outstanding");
    let counts = engine.op_counts();
    assert_eq!(
        counts.0,
        counts.1 + counts.2,
        "conservation: issued {} != completed {} + failed {}",
        counts.0,
        counts.1,
        counts.2
    );
    Session { ops, counts }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Window bound, liveness, and conservation hold for arbitrary
    /// engines under arbitrary out-of-order completion schedules with
    /// injected failures (all asserted inside `drive`).
    #[test]
    fn conservation_and_window_bound_hold(
        seed in 0u64..=u64::MAX,
        steps in 50usize..400,
    ) {
        let spec = arb_spec(seed);
        let s = drive(&spec, seed, steps);
        // The session must have actually exercised the engine.
        prop_assert!(s.counts.0 > 0, "no ops issued");
        prop_assert_eq!(s.counts.0 as usize, s.ops.len());
    }

    /// Seed purity: identical (config, seed, schedule) → bit-identical
    /// op sequences and counters. Any hidden global state, ambient
    /// randomness, or order dependence fails here.
    #[test]
    fn replay_is_bit_identical(
        seed in 0u64..=u64::MAX,
        steps in 50usize..250,
    ) {
        let spec = arb_spec(seed);
        let a = drive(&spec, seed, steps);
        let b = drive(&spec, seed, steps);
        prop_assert_eq!(a, b);
    }

    /// Different seeds diverge (the models are actually randomized, not
    /// constant): across a handful of seeds at least two sessions must
    /// produce different op streams for the same config. The ML-ingest
    /// scan is exempt — its access pattern is deliberately seedless
    /// (pure sequential scan + fixed checkpoint cadence).
    #[test]
    fn seeds_actually_randomize(base in 0u64..=u64::MAX >> 8) {
        let spec = arb_spec(base);
        if matches!(spec, AppModelSpec::MlIngest(_)) {
            return Ok(());
        }
        let first = drive(&spec, base, 120);
        let mut any_diff = false;
        for k in 1..=4u64 {
            if drive(&spec, base ^ (k << 40), 120).ops != first.ops {
                any_diff = true;
                break;
            }
        }
        prop_assert!(any_diff, "op stream ignores the seed");
    }
}
