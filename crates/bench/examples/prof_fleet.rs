//! Throwaway profiling harness: times fleet_scale cells directly.
//!
//! ```text
//! prof_fleet [tenants] [reps] [knob-label] [legacy]
//! SUBSYS=1 prof_fleet 4096        # with per-subsystem attribution
//! prof_fleet 4096 3 none legacy   # force the queue-only engine
//! ```
use std::time::Instant;

use isol_bench::experiments::fleet_scale;
use isol_bench::{Fidelity, Knob};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tenants: usize = args.get(1).map_or(4096, |s| s.parse().unwrap());
    let reps: usize = args.get(2).map_or(1, |s| s.parse().unwrap());
    let knob = args.get(3).map_or(Knob::None, |s| {
        *Knob::ALL
            .iter()
            .find(|k| k.label() == s)
            .expect("knob label")
    });
    if args.get(4).is_some_and(|s| s == "legacy") {
        host_sim::set_merge_events(false);
    }
    host_sim::stats::set_subsystem_timing(std::env::var("SUBSYS").is_ok());
    let until = Fidelity::Smoke.fleet_scale_duration();
    for _ in 0..reps {
        let before = host_sim::stats::snapshot();
        let t = Instant::now();
        let (s, _, _) = fleet_scale::fleet_scale_scenario(knob, tenants);
        let scen = t.elapsed();
        let t1 = Instant::now();
        let sim = s.build_host(until);
        let built = t1.elapsed();
        let t2 = Instant::now();
        let r = sim.run(until);
        let ran = t2.elapsed();
        let after = host_sim::stats::snapshot();
        let events = after.events_popped - before.events_popped;
        let completed: u64 = r.apps.iter().map(|a| a.completed).sum();
        println!(
            "tenants={tenants} engine={} scen={:.1}ms build={:.1}ms run={:.1}ms events={events} ({:.2} Mev/s) ios={completed} peak={} hwm={}/{}",
            if host_sim::merge_events() { "merged" } else { "legacy" },
            scen.as_secs_f64() * 1e3,
            built.as_secs_f64() * 1e3,
            ran.as_secs_f64() * 1e3,
            events as f64 / ran.as_secs_f64() / 1e6,
            after.peak_pending,
            after.tourney_active_hwm,
            after.tourney_leaves,
        );
        for (name, (ns, n)) in host_sim::stats::SUBSYS_NAMES
            .iter()
            .zip(host_sim::stats::subsys_snapshot())
        {
            if n > 0 {
                println!(
                    "  {name:>11}: {:>8.1}ms over {n:>8} calls ({:.0} ns/call)",
                    ns as f64 / 1e6,
                    ns as f64 / n as f64
                );
            }
        }
    }
}
