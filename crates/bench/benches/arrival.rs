//! `arrival`: batched vs per-call arrival generation.
//!
//! The merged engine consumes `(op, pattern, offset)` tuples from an
//! [`ArrivalBatch`] that pregenerates [`BATCH_CHUNK`]-sized chunks via
//! `AddressStream::fill`, instead of calling `next_io` per I/O. The
//! batched path hoists the per-kind dispatch and (for Zipf) the
//! `powf`-based inverse-CDF constants out of the per-sample loop, so
//! the two sides of each pair below measure the same sample sequence —
//! `fill` is sample-identical to repeated `next_io` — at different
//! per-sample cost.
//!
//! Four kinds cover the dispatch arms: sequential (pure pointer walk),
//! uniform random (one RNG draw), mixed (two draws: offset then coin),
//! and Zipf (inverse-CDF with hoisted normalization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use simcore::DetRng;
use workload::{AddressStream, ArrivalBatch, JobSpec, RwKind};

/// 1 GiB of 4 KiB blocks — large enough that Zipf's hot set and the
/// uniform draws exercise the full index math.
const CAPACITY: u64 = 1 << 30;

fn kinds() -> [(&'static str, RwKind); 4] {
    [
        ("seqread", RwKind::SeqRead),
        ("randread", RwKind::RandRead),
        ("randrw", RwKind::RandRw { read_frac: 0.7 }),
        ("zipfread", RwKind::ZipfRead { theta: 1.1 }),
    ]
}

fn stream(rw: RwKind) -> AddressStream {
    let spec = JobSpec::builder("bench").rw(rw).block_size(4096).build();
    AddressStream::new(&spec, CAPACITY, DetRng::new(0xA221))
}

fn bench_arrival(c: &mut Criterion) {
    let mut g = c.benchmark_group("arrival");
    g.sample_size(50);
    for (name, rw) in kinds() {
        g.bench_function(BenchmarkId::new("percall", name), |b| {
            let mut s = stream(rw);
            b.iter(|| black_box(s.next_io()));
        });
        g.bench_function(BenchmarkId::new("batched", name), |b| {
            let mut s = stream(rw);
            let mut batch = ArrivalBatch::new();
            b.iter(|| black_box(batch.next(&mut s)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_arrival);
criterion_main!(benches);
