//! Event-queue and request-tracking micro-benchmarks:
//!
//! * heap pre-sizing (`EventQueue::with_capacity`) vs growing from
//!   empty,
//! * the timing-wheel backend vs the binary-heap backend under the
//!   engine's three characteristic schedule shapes (uniform churn,
//!   bursty arrivals with long quiet gaps, same-instant ties),
//! * slab/free-list in-service tracking vs a `HashMap` keyed by request
//!   id (the structure `NvmeDevice` replaced).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

use blkio::{AccessPattern, AppId, DeviceId, GroupId, IoOp, IoRequest};
use simcore::{EventQueue, QueueBackend, SimDuration, SimTime};

const EVENTS: u64 = 10_000;

/// Fill-then-drain: schedule everything, then pop everything. Growth
/// cost shows up in the fill phase of the unsized variant.
fn fill_drain(mut q: EventQueue<u64>) -> u64 {
    for i in 0..EVENTS {
        q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
    }
    let mut sum = 0u64;
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

/// Steady-state churn as the engine sees it: a bounded pending set
/// (one completion re-arms the next event), far more pops than the
/// peak queue length.
fn churn(mut q: EventQueue<u64>, pending: u64) -> u64 {
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(i * 997), i);
    }
    let mut sum = 0u64;
    let mut next = pending;
    while next < EVENTS {
        let (t, v) = q.pop().expect("pending set never empties");
        sum = sum.wrapping_add(v);
        q.schedule(t + simcore::SimDuration::from_nanos(997 + v % 131), next);
        next += 1;
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

fn bench_event_queue_sizing(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_sizing");
    g.bench_function(BenchmarkId::new("fill_drain_10k", "unsized"), |b| {
        b.iter(|| black_box(fill_drain(EventQueue::new())));
    });
    g.bench_function(BenchmarkId::new("fill_drain_10k", "presized"), |b| {
        b.iter(|| black_box(fill_drain(EventQueue::with_capacity(EVENTS as usize))));
    });
    let pending = 256u64; // ~ one device's max_qd worth of in-flight events
    g.bench_function(BenchmarkId::new("churn_10k_qd256", "unsized"), |b| {
        b.iter(|| black_box(churn(EventQueue::new(), pending)));
    });
    g.bench_function(BenchmarkId::new("churn_10k_qd256", "presized"), |b| {
        b.iter(|| black_box(churn(EventQueue::with_capacity(pending as usize), pending)));
    });
    g.finish();
}

/// Uniform churn: a 512-deep pending set with re-arm delays spread over
/// ~130 µs — the steady-state shape of a saturated device.
fn uniform_workload(mut q: EventQueue<u64>) -> u64 {
    let pending = 512u64;
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(i * 257), i);
    }
    let mut sum = 0u64;
    for next in pending..EVENTS {
        let (t, v) = q.pop().expect("pending set never empties");
        sum = sum.wrapping_add(v);
        q.schedule(t + SimDuration::from_nanos(1 + (v * 7919) % 131_072), next);
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

/// Bursty arrivals: clusters of 64 events within 10 µs separated by
/// 5 ms quiet gaps (burst workloads; exercises the wheel's upper level
/// and far-heap scatter path).
fn bursty_workload(mut q: EventQueue<u64>) -> u64 {
    let mut sum = 0u64;
    let mut base = SimTime::ZERO;
    let mut i = 0u64;
    while i < EVENTS {
        for k in 0..64 {
            q.schedule(base + SimDuration::from_nanos((k * 157) % 10_000), i);
            i += 1;
        }
        // Drain half the burst, keeping a backlog across gaps.
        for _ in 0..32 {
            let (_, v) = q.pop().expect("burst pending");
            sum = sum.wrapping_add(v);
        }
        base += SimDuration::from_micros(5_000);
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

/// Same-instant ties: batches of 128 events at one instant (FIFO
/// tie-break pressure — completions fanning out of one dispatch).
fn ties_workload(mut q: EventQueue<u64>) -> u64 {
    let mut sum = 0u64;
    let mut i = 0u64;
    let mut now = SimTime::ZERO;
    while i < EVENTS {
        for _ in 0..128 {
            q.schedule(now, i);
            i += 1;
        }
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        now += SimDuration::from_nanos(911);
    }
    sum
}

fn bench_queue_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_backends");
    let backends = [("wheel", QueueBackend::Wheel), ("heap", QueueBackend::Heap)];
    for (name, backend) in backends {
        g.bench_function(BenchmarkId::new("uniform_10k", name), |b| {
            b.iter(|| black_box(uniform_workload(EventQueue::with_backend(backend))));
        });
        g.bench_function(BenchmarkId::new("bursty_10k", name), |b| {
            b.iter(|| black_box(bursty_workload(EventQueue::with_backend(backend))));
        });
        g.bench_function(BenchmarkId::new("ties_10k", name), |b| {
            b.iter(|| black_box(ties_workload(EventQueue::with_backend(backend))));
        });
    }
    g.finish();
}

fn mk_req(id: u64) -> IoRequest {
    IoRequest::new(
        id,
        AppId(0),
        GroupId(0),
        DeviceId(0),
        IoOp::Read,
        AccessPattern::Random,
        4096,
        id * 4096,
        SimTime::from_nanos(id),
    )
}

/// In-service tracking via `HashMap<ReqId, IoRequest>` — the structure
/// `NvmeDevice` used before the slab: hash + probe per start/complete.
fn hashmap_tracking(outstanding: u64) -> u64 {
    let mut in_service: HashMap<u64, IoRequest> = HashMap::new();
    let mut sum = 0u64;
    for i in 0..EVENTS {
        in_service.insert(i, mk_req(i));
        if i >= outstanding {
            let req = in_service.remove(&(i - outstanding)).expect("tracked");
            sum = sum.wrapping_add(u64::from(req.len));
        }
    }
    for (_, req) in in_service.drain() {
        sum = sum.wrapping_add(u64::from(req.len));
    }
    sum
}

/// In-service tracking via the slab/free-list shape `NvmeDevice` uses
/// now: a fixed arena indexed by service slot, FIFO completion order.
fn slab_tracking(outstanding: u64) -> u64 {
    let n = outstanding as usize;
    let mut slots: Vec<Option<IoRequest>> = (0..n).map(|_| None).collect();
    let mut free: Vec<u32> = (0..n as u32).rev().collect();
    // Completion ring: slot of the i-th started request, retired FIFO.
    let mut ring: Vec<u32> = vec![0; n];
    let mut sum = 0u64;
    for i in 0..EVENTS {
        if i >= outstanding {
            let slot = ring[(i % outstanding) as usize];
            let req = slots[slot as usize].take().expect("tracked");
            free.push(slot);
            sum = sum.wrapping_add(u64::from(req.len));
        }
        let slot = free.pop().expect("arena sized to outstanding");
        slots[slot as usize] = Some(mk_req(i));
        ring[(i % outstanding) as usize] = slot;
    }
    for req in slots.into_iter().flatten() {
        sum = sum.wrapping_add(u64::from(req.len));
    }
    sum
}

fn bench_slab_vs_hashmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("in_service_tracking");
    for outstanding in [64u64, 256] {
        g.bench_function(
            BenchmarkId::new(format!("hashmap_10k_qd{outstanding}"), "hashmap"),
            |b| b.iter(|| black_box(hashmap_tracking(outstanding))),
        );
        g.bench_function(
            BenchmarkId::new(format!("slab_10k_qd{outstanding}"), "slab"),
            |b| b.iter(|| black_box(slab_tracking(outstanding))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue_sizing,
    bench_queue_backends,
    bench_slab_vs_hashmap
);
criterion_main!(benches);
