//! Event-queue throughput: schedule/pop cycles with and without heap
//! pre-sizing (`EventQueue::with_capacity`). The host engine pre-sizes
//! its queue to the pending-event bound at build time; this bench
//! quantifies what that saves over growing from empty.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use simcore::{EventQueue, SimTime};

const EVENTS: u64 = 10_000;

/// Fill-then-drain: schedule everything, then pop everything. Growth
/// cost shows up in the fill phase of the unsized variant.
fn fill_drain(mut q: EventQueue<u64>) -> u64 {
    for i in 0..EVENTS {
        q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
    }
    let mut sum = 0u64;
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

/// Steady-state churn as the engine sees it: a bounded pending set
/// (one completion re-arms the next event), far more pops than the
/// peak queue length.
fn churn(mut q: EventQueue<u64>, pending: u64) -> u64 {
    for i in 0..pending {
        q.schedule(SimTime::from_nanos(i * 997), i);
    }
    let mut sum = 0u64;
    let mut next = pending;
    while next < EVENTS {
        let (t, v) = q.pop().expect("pending set never empties");
        sum = sum.wrapping_add(v);
        q.schedule(t + simcore::SimDuration::from_nanos(997 + v % 131), next);
        next += 1;
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

fn bench_event_queue_sizing(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_sizing");
    g.bench_function(BenchmarkId::new("fill_drain_10k", "unsized"), |b| {
        b.iter(|| black_box(fill_drain(EventQueue::new())));
    });
    g.bench_function(BenchmarkId::new("fill_drain_10k", "presized"), |b| {
        b.iter(|| black_box(fill_drain(EventQueue::with_capacity(EVENTS as usize))));
    });
    let pending = 256u64; // ~ one device's max_qd worth of in-flight events
    g.bench_function(BenchmarkId::new("churn_10k_qd256", "unsized"), |b| {
        b.iter(|| black_box(churn(EventQueue::new(), pending)));
    });
    g.bench_function(BenchmarkId::new("churn_10k_qd256", "presized"), |b| {
        b.iter(|| black_box(churn(EventQueue::with_capacity(pending as usize), pending)));
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue_sizing);
criterion_main!(benches);
