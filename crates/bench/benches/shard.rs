//! Sharded-engine benchmarks: the 7-SSD fleet scenario at increasing
//! shard counts (results are bit-exact at every count; only wall-clock
//! changes), plus the traced variant whose journal/coordinator overhead
//! is the price of byte-identical trace bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use isol_bench::experiments::fleet;
use isol_bench::Knob;
use simcore::SimTime;

/// Short enough for `cargo test` (which runs each bench once), long
/// enough that shard setup cost is amortized.
const UNTIL_MS: u64 = 20;

fn bench_fleet_shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_shards");
    let until = SimTime::from_millis(UNTIL_MS);
    for shards in [1usize, 2, 4, 7] {
        g.bench_function(BenchmarkId::new("fleet_7ssd_20ms", shards), |b| {
            b.iter(|| {
                let sim = fleet::fleet_scenario(Knob::None, fleet::FLEET_SSDS).build_host(until);
                black_box(sim.run_sharded(until, shards))
            });
        });
    }
    g.finish();
}

fn bench_fleet_traced(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_shards_traced");
    let until = SimTime::from_millis(UNTIL_MS);
    for shards in [1usize, 4] {
        g.bench_function(BenchmarkId::new("fleet_7ssd_20ms_traced", shards), |b| {
            b.iter(|| {
                simcore::trace::install(1 << 16);
                let sim = fleet::fleet_scenario(Knob::None, fleet::FLEET_SSDS).build_host(until);
                let r = sim.run_sharded(until, shards);
                let trace = simcore::trace::take().expect("recorder installed");
                black_box((r, trace.events.len()))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fleet_shards, bench_fleet_traced);
criterion_main!(benches);
