//! Ablation benches for the design choices called out in DESIGN.md §11:
//!
//! * io.latency recovery step (`+max_qd/4` vs `+1`) → burst recovery,
//! * iocost QoS vrate adjustment on/off → achieved throughput,
//! * BFQ `slice_idle` on/off → utilization,
//! * MQ-DL `prio_aging_expire` sweep → starvation vs strict priority.
//!
//! Each bench measures wall-clock of the simulation run and *prints* the
//! ablated metric once per configuration so the effect is visible in the
//! bench log.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Once;

use blkio::PrioClass;
use cgroup_sim::{IoLatency, Knob as KnobWrite};
use iosched_sim::{BfqConfig, MqDeadlineConfig};
use isol_bench::{Knob, Scenario};
use simcore::{SimDuration, SimTime};
use workload::JobSpec;

fn bfq_slice_idle_ablation(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    let mut g = c.benchmark_group("ablation_bfq_slice_idle");
    g.sample_size(10);
    for (label, idle_ms) in [("idle_8ms", 8u64), ("idle_off", 0)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &idle_ms,
            |b, &idle_ms| {
                b.iter(|| {
                    let cfg = BfqConfig {
                        slice_idle: SimDuration::from_millis(idle_ms),
                        ..BfqConfig::default()
                    };
                    let mut s = Scenario::new(
                        "ablate-bfq",
                        8,
                        vec![Knob::BfqWeight.device_setup(false).with_bfq(cfg)],
                    );
                    let g0 = s.add_cgroup("a");
                    let g1 = s.add_cgroup("b");
                    // Sequential tenants: the case where idling fires.
                    s.add_app(
                        g0,
                        JobSpec::builder("a")
                            .rw(workload::RwKind::SeqRead)
                            .block_size(65536)
                            .iodepth(4)
                            .rate_mib_s(800.0)
                            .build(),
                    );
                    s.add_app(
                        g1,
                        JobSpec::builder("b")
                            .rw(workload::RwKind::SeqRead)
                            .block_size(65536)
                            .iodepth(4)
                            .rate_mib_s(800.0)
                            .build(),
                    );
                    let r = s.run(SimTime::from_millis(300));
                    black_box(r.aggregate_gib_s())
                });
            },
        );
    }
    g.finish();
    PRINTED.call_once(|| {
        println!("(slice_idle trades utilization for per-tenant weight enforcement)");
    });
}

fn iocost_qos_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_iocost_qos");
    g.sample_size(10);
    for (label, enable) in [("qos_on", true), ("qos_off_model_only", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &enable, |b, &enable| {
            b.iter(|| {
                let mut s =
                    Scenario::new("ablate-iocost", 8, vec![Knob::IoCost.device_setup(false)]);
                let g0 = s.add_cgroup("a");
                let g1 = s.add_cgroup("b");
                for i in 0..4 {
                    s.add_app(g0, JobSpec::batch_app(&format!("a{i}")));
                    s.add_app(g1, JobSpec::batch_app(&format!("b{i}")));
                }
                Knob::IoCost.configure_weights(&mut s, &[g0, g1], &[100, 100]);
                if !enable {
                    // Model-only: full-speed window, no latency targets.
                    let mut qos = Knob::fairness_qos();
                    qos.rpct = 0.0;
                    qos.wpct = 0.0;
                    qos.min_pct = 100.0;
                    let dev = cgroup_sim::DevNode::nvme(0);
                    s.hierarchy_mut()
                        .apply(cgroup_sim::Hierarchy::ROOT, KnobWrite::CostQos(dev, qos))
                        .expect("qos");
                }
                let r = s.run(SimTime::from_millis(300));
                black_box(r.aggregate_gib_s())
            });
        });
    }
    g.finish();
}

fn iolatency_step_ablation(c: &mut Criterion) {
    // The recovery step is hard-coded at max_qd/4 in the kernel; the
    // ablation varies max_qd instead, which scales both the halving
    // count and the step — the knob's real sensitivity (O10's "based on
    // the SSD's max QD").
    let mut g = c.benchmark_group("ablation_iolatency_max_qd");
    g.sample_size(10);
    for max_qd in [64u32, 1024] {
        g.bench_with_input(
            BenchmarkId::from_parameter(max_qd),
            &max_qd,
            |b, &max_qd| {
                b.iter(|| {
                    let mut setup = Knob::IoLatency.device_setup(false);
                    setup.profile.max_qd = max_qd;
                    let mut s = Scenario::new("ablate-iolat", 8, vec![setup]);
                    let prio = s.add_cgroup("prio");
                    let be = s.add_cgroup("be");
                    s.add_app(prio, JobSpec::lc_app("prio"));
                    for i in 0..4 {
                        s.add_app(be, JobSpec::be_app(&format!("be{i}")));
                    }
                    s.hierarchy_mut()
                        .apply(
                            prio,
                            KnobWrite::Latency(
                                cgroup_sim::DevNode::nvme(0),
                                IoLatency { target_us: 150 },
                            ),
                        )
                        .expect("target");
                    let r = s.run(SimTime::from_millis(1_200));
                    black_box(r.apps[0].latency.p99_us)
                });
            },
        );
    }
    g.finish();
}

fn mqdl_aging_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mqdl_aging");
    g.sample_size(10);
    for aging_ms in [100u64, 1_000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(aging_ms),
            &aging_ms,
            |b, &aging_ms| {
                b.iter(|| {
                    let cfg = MqDeadlineConfig {
                        prio_aging_expire: SimDuration::from_millis(aging_ms),
                        ..MqDeadlineConfig::default()
                    };
                    let mut s = Scenario::new(
                        "ablate-mqdl",
                        8,
                        vec![Knob::MqDlPrio.device_setup(false).with_mq_deadline(cfg)],
                    );
                    let rt = s.add_cgroup("rt");
                    let idle = s.add_cgroup("idle");
                    s.add_app(
                        rt,
                        JobSpec::builder("rt")
                            .block_size(65536)
                            .iodepth(128)
                            .build(),
                    );
                    s.add_app(
                        idle,
                        JobSpec::builder("idle")
                            .block_size(65536)
                            .iodepth(128)
                            .build(),
                    );
                    s.hierarchy_mut()
                        .apply(rt, KnobWrite::PrioClass(PrioClass::Realtime))
                        .unwrap();
                    s.hierarchy_mut()
                        .apply(idle, KnobWrite::PrioClass(PrioClass::Idle))
                        .unwrap();
                    let r = s.run(SimTime::from_millis(400));
                    // Starved tenant's bandwidth scales with aging frequency.
                    black_box(r.apps[1].mean_mib_s)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Each iteration is a full (sub-second to second) simulation run;
    // keep warm-up and measurement tight so `cargo bench` stays fast.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    targets = bfq_slice_idle_ablation,
        iocost_qos_ablation,
        iolatency_step_ablation,
        mqdl_aging_ablation
}
criterion_main!(benches);
