//! Cell-cache micro-benchmarks: the per-cell overhead the
//! content-addressed cache adds to a `figures` run.
//!
//! * fingerprinting — building the canonical spec string for a real
//!   grid scenario and hashing it with both vendored lanes (XXH64 +
//!   FNV-1a); this is the cost every cache-enabled cell pays even on a
//!   hit,
//! * hash throughput on a prebuilt spec (isolates the hash lanes from
//!   the spec formatting),
//! * the disk round-trip — `store_rows` (render + temp file + atomic
//!   rename) and `load_rows` (read + strict parse + checksum) for a
//!   typical cell payload.
//!
//! All of this must stay microseconds-per-cell: a cache hit is only
//! worth having if it is orders of magnitude below the milliseconds a
//! smoke-fidelity simulation costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use isol_bench::{cache, Fidelity, Knob, Scenario};
use simcore::{Fingerprint, SimTime};
use workload::JobSpec;

/// A representative grid scenario (the fig4 shape: one cgroup per app,
/// uniform weights).
fn sample_scenario() -> Scenario {
    let mut s = Scenario::new(
        "bench-cache-cell",
        10,
        vec![Knob::IoCost.device_setup(false)],
    );
    let mut groups = Vec::new();
    for i in 0..8 {
        let g = s.add_cgroup(&format!("cg-{i}"));
        s.add_app(g, JobSpec::batch_app(&format!("app-{i}")));
        groups.push(g);
    }
    let weights = vec![100; groups.len()];
    Knob::IoCost.configure_weights(&mut s, &groups, &weights);
    s
}

/// A typical cell payload (a few metric rows plus a CDF).
fn sample_rows() -> Vec<Vec<f64>> {
    let mut rows = vec![vec![123.456, 789.0, 0.42, 1.7, 12.3]];
    for i in 0..40 {
        rows.push(vec![f64::from(i) * 3.25, f64::from(i) / 40.0]);
    }
    rows
}

fn bench_fingerprint(c: &mut Criterion) {
    let scenario = sample_scenario();
    let until = SimTime::from_nanos(1_000_000_000);
    let mut g = c.benchmark_group("cell_cache_fingerprint");
    g.bench_function("spec_string_and_fingerprint", |b| {
        b.iter(|| {
            let spec = cache::spec_string(
                black_box("fig4"),
                black_box("fig4-io.cost-1ssd-8"),
                Fidelity::Smoke,
                black_box(&scenario),
                until,
            );
            black_box(cache::fingerprint(&spec))
        });
    });
    let spec = cache::spec_string(
        "fig4",
        "fig4-io.cost-1ssd-8",
        Fidelity::Smoke,
        &scenario,
        until,
    );
    g.bench_function("hash_lanes_on_prebuilt_spec", |b| {
        b.iter(|| black_box(Fingerprint::of(black_box(spec.as_bytes()), 0x1505)));
    });
    g.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("isol-bench-cache-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let rows = sample_rows();
    let mut g = c.benchmark_group("cell_cache_round_trip");
    g.bench_function("store_rows", |b| {
        b.iter(|| cache::store_rows(black_box(&dir), black_box("bench-spec"), black_box(&rows)));
    });
    cache::store_rows(&dir, "bench-spec", &rows).expect("seed entry");
    g.bench_function("load_rows_hit", |b| {
        b.iter(|| black_box(cache::load_rows(black_box(&dir), black_box("bench-spec"))));
    });
    g.bench_function("load_rows_miss", |b| {
        b.iter(|| black_box(cache::load_rows(black_box(&dir), black_box("absent-spec"))));
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_fingerprint, bench_round_trip);
criterion_main!(benches);
