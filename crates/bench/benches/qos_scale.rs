//! `qos_scale`: controller-cost scaling with tenant count.
//!
//! Two cost axes, each at 8 / 256 / 1024 / 4096 / 16384 materialized
//! tenant groups with ~10% of them active (the fleet steady state: most
//! tenants idle between diurnal bursts):
//!
//! * **tick** — one `io.cost` period boundary (`adjust_vrate`): usage
//!   EMAs, active-set pruning, vrate clamp. The arena controller walks
//!   only the active slot set; the retained map baseline walks every
//!   materialized group.
//! * **charge** — pricing one 4 KiB random read on the submit path
//!   (`on_submit`): the arena controller serves hweight from its memo
//!   or recomputes over actives; the map baseline rebuilds the full
//!   donation row set from a `HashMap` walk per I/O.
//!
//! The `perfsnap` binary re-times the tick axis at 1024 groups and
//! gates the arena/map ratio (≥5×) plus absolute regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ioqos::{IoCostController, QosController};
use isol_bench_harness::mapqos::{self, CostControl, MapIoCost};
use simcore::SimDuration;

const GROUP_COUNTS: [usize; 5] = [8, 256, 1024, 4096, 16384];

fn bench_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("qos_scale_tick");
    g.sample_size(50);
    for n in GROUP_COUNTS {
        g.bench_function(BenchmarkId::new("arena", n), |b| {
            let mut ctl = IoCostController::new(mapqos::bench_config());
            let mut now = mapqos::populate(&mut ctl, n);
            b.iter(|| {
                now += SimDuration::from_millis(5);
                ctl.tick(black_box(now));
            });
        });
        g.bench_function(BenchmarkId::new("map", n), |b| {
            let mut ctl = MapIoCost::new(mapqos::bench_config());
            let mut now = mapqos::populate(&mut ctl, n);
            b.iter(|| {
                now += SimDuration::from_millis(5);
                ctl.tick(black_box(now));
            });
        });
    }
    g.finish();
}

fn bench_charge(c: &mut Criterion) {
    let mut g = c.benchmark_group("qos_scale_charge");
    g.sample_size(50);
    fn charge_loop(ctl: &mut impl CostControl, n: usize, b: &mut criterion::Bencher) {
        let mut now = mapqos::populate(ctl, n);
        let mut id = 1_000_000;
        b.iter(|| {
            // The probe tenant's weight dwarfs the fleet's, so its
            // charge always clears the margin at this pace and the
            // held queues stay bounded.
            now += SimDuration::from_micros(400);
            id += 1;
            let req = mapqos::read4k(id, mapqos::PROBE_GROUP, now);
            black_box(ctl.on_submit(req, now))
        });
    }
    for n in GROUP_COUNTS {
        g.bench_function(BenchmarkId::new("arena", n), |b| {
            let mut ctl = IoCostController::new(mapqos::bench_config());
            charge_loop(&mut ctl, n, b);
        });
        g.bench_function(BenchmarkId::new("map", n), |b| {
            let mut ctl = MapIoCost::new(mapqos::bench_config());
            charge_loop(&mut ctl, n, b);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tick, bench_charge);
criterion_main!(benches);
