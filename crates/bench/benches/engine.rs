//! Micro-benchmarks of the simulator's hot paths: the event queue, the
//! latency histogram, the device service loop, and a full host-sim
//! second of simulated I/O per scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use blkio::{AccessPattern, AppId, DeviceId, GroupId, IoOp, IoRequest};
use iosched_sim::SchedKind;
use isol_bench::{Knob, Scenario};
use nvme_sim::{DeviceProfile, NvmeDevice, StartedCmd};
use simcore::{DetRng, EventQueue, SimTime};
use workload::JobSpec;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("latency_histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = iostats::LatencyHistogram::new();
            let mut x = 12345u64;
            for _ in 0..100_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h.record_ns(x % 10_000_000);
            }
            black_box(h.percentile_ns(0.99))
        });
    });
}

fn bench_device(c: &mut Criterion) {
    c.bench_function("nvme_device_service_10k", |b| {
        b.iter(|| {
            let mut dev = NvmeDevice::new(DeviceProfile::flash(), DetRng::new(1));
            let mut now = SimTime::ZERO;
            let mut completions: Vec<StartedCmd> = Vec::new();
            for i in 0..10_000u64 {
                let r = IoRequest::new(
                    i,
                    AppId(0),
                    GroupId(0),
                    DeviceId(0),
                    IoOp::Read,
                    AccessPattern::Random,
                    4096,
                    0,
                    now,
                );
                if !dev.has_capacity(now) {
                    // Retire the oldest outstanding completion.
                    let cmd = completions.remove(0);
                    now = cmd.done_at;
                    dev.complete_current(cmd.slot, cmd.gen, now);
                }
                dev.accept(r, now);
                completions.extend(dev.start_ready(now));
            }
            black_box(dev.served())
        });
    });
}

fn bench_host_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_sim_quarter_second");
    g.sample_size(10);
    for sched in [SchedKind::None, SchedKind::MqDeadline, SchedKind::Bfq] {
        g.bench_with_input(BenchmarkId::from_parameter(sched), &sched, |b, &sched| {
            b.iter(|| {
                let knob = match sched {
                    SchedKind::MqDeadline => Knob::MqDlPrio,
                    SchedKind::Bfq => Knob::BfqWeight,
                    _ => Knob::None,
                };
                let mut s = Scenario::new("bench", 4, vec![knob.device_setup(true)]);
                let g0 = s.add_cgroup("g0");
                s.add_app(g0, JobSpec::batch_app("b"));
                black_box(s.run(SimTime::from_millis(250)).total_bytes())
            });
        });
    }
    g.finish();
}

/// The tracing overhead contract: a disabled recorder is one
/// thread-local flag read per probe site (compare `untraced` against
/// the other `host_sim_quarter_second` numbers over time), and even a
/// fully armed recorder stays within a small constant factor.
fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.sample_size(10);
    let scenario = || {
        let mut s = Scenario::new("bench", 4, vec![Knob::MqDlPrio.device_setup(true)]);
        let g0 = s.add_cgroup("g0");
        s.add_app(g0, JobSpec::batch_app("b"));
        s
    };
    g.bench_function("host_sim_quarter_second_untraced", |b| {
        b.iter(|| black_box(scenario().run(SimTime::from_millis(250)).total_bytes()));
    });
    g.bench_function("host_sim_quarter_second_traced", |b| {
        b.iter(|| {
            let (report, trace) = scenario().run_traced(SimTime::from_millis(250), 1 << 20);
            black_box((report.total_bytes(), trace.events.len()))
        });
    });
    g.bench_function("record_with_disabled_100k", |b| {
        b.iter(|| {
            for i in 0..100_000u64 {
                simcore::trace::record_with(|| {
                    panic!("event built with tracing disabled ({i})");
                });
            }
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_event_queue, bench_histogram, bench_device, bench_host_sim, bench_trace
}
criterion_main!(benches);
