//! One bench target per paper artifact.
//!
//! These are *macro* benches: each runs a smoke-scale version of one
//! figure/table experiment exactly once and reports wall-clock and the
//! simulated-events throughput. (Criterion's repeated sampling is a poor
//! fit for multi-second simulation runs; the `engine` bench covers the
//! hot paths statistically, and `ablations` covers design choices.)
//!
//! Run with `cargo bench --bench paper_experiments`.

use std::time::Instant;

use isol_bench::experiments::{fig2, fig3, fig4, fig5, fig6, fig7, optane, q10, table1, writeback};
use isol_bench::{Fidelity, OutputSink};

const F: Fidelity = Fidelity::Smoke;

fn time<T>(name: &str, f: impl FnOnce(&mut OutputSink) -> std::io::Result<T>) -> T {
    let mut sink = OutputSink::quiet();
    let t0 = Instant::now();
    let out = f(&mut sink).unwrap_or_else(|e| panic!("{name} failed: {e}"));
    println!("{name:<32} {:>10.2?}", t0.elapsed());
    out
}

fn main() {
    // Honor `cargo bench -- <filter>` by substring, like libtest.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let selected = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f));

    println!("paper-experiment regeneration benches (smoke fidelity):");
    let f3 = selected("fig3").then(|| time("fig3_latency_overhead", |s| fig3::run(F, s)));
    let f4 = selected("fig4").then(|| time("fig4_bandwidth_scalability", |s| fig4::run(F, s)));
    let f5 = selected("fig5").then(|| time("fig5_fairness_scaling", |s| fig5::run(F, s)));
    let f6 = selected("fig6").then(|| time("fig6_mixed_workload_fairness", |s| fig6::run(F, s)));
    let f7 = selected("fig7").then(|| time("fig7_tradeoff_fronts", |s| fig7::run(F, s)));
    let q = selected("q10").then(|| time("q10_burst_response", |s| q10::run(F, s)));
    if selected("fig2") {
        time("fig2_knob_showcases", |s| fig2::run(F, s));
    }
    if selected("optane") {
        time("optane_generalizability", |s| optane::run(F, s));
    }
    if selected("writeback") {
        time("writeback_attribution", |s| writeback::run(F, s));
    }
    if let (Some(f3), Some(f4), Some(f5), Some(f6), Some(f7), Some(q)) = (
        f3.as_ref(),
        f4.as_ref(),
        f5.as_ref(),
        f6.as_ref(),
        f7.as_ref(),
        q.as_ref(),
    ) {
        let t0 = Instant::now();
        let t = table1::derive(f3, f4, f5, f6, f7, q, F);
        println!("table1_verdict_derivation        {:>10.2?}", t0.elapsed());
        assert_eq!(t.rows.len(), 5, "five knob rows");
    }
    println!("done.");
}
