//! End-to-end crash/hang resilience tests against the real `figures`
//! binary, each in its own scratch working directory (the harness
//! writes to `target/isol-bench/` relative to the cwd):
//!
//! * SIGKILL a run mid-grid, rerun with `--resume`, and require the
//!   CSVs and the per-cell `(experiment, label, outcome)` triples in
//!   `timings.json` to be byte-identical to an uninterrupted run;
//! * `--inject-hang` a cell and require the watchdog to cancel it
//!   within the deadline, retry it, quarantine it, classify it
//!   `timed_out`, and still exit 0 with every other table emitted.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const FIGURES: &str = env!("CARGO_BIN_EXE_figures");
const CSVS: [&str; 2] = ["fig4_bandwidth_cpu_1ssd.csv", "fig4_bandwidth_cpu_7ssd.csv"];

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("isol-bench-resume-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&d).ok();
    fs::create_dir_all(&d).expect("scratch dir");
    d
}

fn figures(cwd: &Path, args: &[&str]) -> Command {
    let mut cmd = Command::new(FIGURES);
    cmd.current_dir(cwd)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd
}

fn out_file(cwd: &Path, name: &str) -> PathBuf {
    cwd.join("target/isol-bench").join(name)
}

/// The order- and duration-independent part of `timings.json`: one
/// `(experiment, label, outcome)` line per cell, `"seconds"` stripped.
fn cell_outcomes(cwd: &Path) -> Vec<String> {
    let text = fs::read_to_string(out_file(cwd, "timings.json")).expect("timings.json");
    text.lines()
        .filter(|l| l.contains("\"experiment\""))
        .map(|l| {
            let start = l.find(", \"seconds\":").expect("seconds field");
            let end = l[start + 1..].find(',').expect("field after seconds") + start + 1;
            format!("{}{}", &l[..start], &l[end..])
        })
        .collect()
}

#[test]
fn sigkill_then_resume_matches_an_uninterrupted_run() {
    let base = &["--smoke", "fig4", "--no-cache", "--jobs", "2"];

    // Reference: an uninterrupted run.
    let ref_dir = scratch_dir("ref");
    let status = figures(&ref_dir, base).status().expect("spawn figures");
    assert!(status.success(), "reference run failed: {status}");
    let ref_csvs: Vec<Vec<u8>> = CSVS
        .iter()
        .map(|n| fs::read(out_file(&ref_dir, n)).expect("reference csv"))
        .collect();
    let ref_cells = cell_outcomes(&ref_dir);
    assert!(!ref_cells.is_empty(), "reference run must report cells");

    // Victim: same run, SIGKILLed once the journal holds a few durable
    // cells (so the resume has real work both to replay and to redo).
    let kill_dir = scratch_dir("kill");
    let mut child = figures(&kill_dir, base).spawn().expect("spawn victim");
    let journal = out_file(&kill_dir, "journal/run.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let cells = fs::read_to_string(&journal)
            .map(|t| t.lines().filter(|l| l.contains("\"cell\":")).count())
            .unwrap_or(0);
        if cells >= 3 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            // Too fast to catch mid-run — the resume below degenerates
            // to a full replay, which the test still validates.
            assert!(status.success(), "victim run failed: {status}");
            break;
        }
        assert!(Instant::now() < deadline, "no journaled cells within 120s");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().ok(); // SIGKILL: no cleanup code runs
    child.wait().expect("reap victim");

    // Resume must complete only the missing cells and converge to the
    // uninterrupted run's bytes.
    let mut resume_args = base.to_vec();
    resume_args.push("--resume");
    let status = figures(&kill_dir, &resume_args)
        .status()
        .expect("spawn resume");
    assert!(status.success(), "resume run failed: {status}");
    for (name, expect) in CSVS.iter().zip(&ref_csvs) {
        let got = fs::read(out_file(&kill_dir, name)).expect("resumed csv");
        assert_eq!(
            &got, expect,
            "{name} differs between resumed and uninterrupted runs"
        );
    }
    assert_eq!(
        cell_outcomes(&kill_dir),
        ref_cells,
        "per-cell outcomes must survive the resume"
    );

    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&kill_dir).ok();
}

#[test]
fn injected_hang_is_cancelled_retried_and_quarantined() {
    let dir = scratch_dir("hang");
    let label = "fig4-none-1ssd-1";
    // Soft deadline well above the slowest healthy smoke cell (~1.2s)
    // so only the injected hang trips it.
    let started = Instant::now();
    let status = figures(
        &dir,
        &[
            "--smoke",
            "fig4",
            "--no-cache",
            "--jobs",
            "2",
            "--inject-hang",
            label,
            "--watchdog-soft-ms",
            "4000",
            "--watchdog-hard-ms",
            "10000",
            "--cell-retries",
            "1",
            "--retry-backoff-ms",
            "10",
        ],
    )
    .status()
    .expect("spawn figures");
    let elapsed = started.elapsed();
    assert!(status.success(), "a hung cell must not fail the run");
    // Two attempts at a 4s soft deadline plus the healthy grid: a
    // watchdog-bounded run stays far under this; an unbounded hang
    // never returns at all.
    assert!(
        elapsed < Duration::from_secs(90),
        "watchdog must bound the run (took {elapsed:?})"
    );

    let failures = fs::read_to_string(out_file(&dir, "failures.json")).expect("failures.json");
    assert!(
        failures.contains(label),
        "failures.json must name the hung cell"
    );
    assert!(
        failures.contains("\"class\": \"timed_out\""),
        "hung cell must be classified timed_out"
    );

    let timings = fs::read_to_string(out_file(&dir, "timings.json")).expect("timings.json");
    assert!(
        !timings.contains("\"watchdog_soft\": 0,"),
        "soft watchdog fires must be recorded"
    );
    assert!(
        timings.contains(&format!("\"{label}\"")),
        "quarantine list must name the hung cell"
    );
    // The healthy cells still produced both tables.
    for name in CSVS {
        assert!(
            out_file(&dir, name).exists(),
            "{name} must still be emitted"
        );
    }
    fs::remove_dir_all(&dir).ok();
}
