//! # isol-bench-harness — benchmark harness and figure regeneration
//!
//! Two entry points:
//!
//! * the **`figures` binary** regenerates every table and figure of the
//!   paper (`cargo run --release -p isol-bench-harness --bin figures --
//!   all`), printing the same rows/series the paper reports and writing
//!   CSVs under [`OUTPUT_DIR`],
//! * the **Criterion benches** (`cargo bench`) cover the simulator's
//!   hot paths (`engine`), a scaled-down run of every paper experiment
//!   (`paper_experiments`), and the design-choice ablations from
//!   DESIGN.md §11 (`ablations`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::Duration;

pub mod mapqos;

/// The directory experiment CSVs are written into.
pub const OUTPUT_DIR: &str = "target/isol-bench";

/// Parses the value of a `--jobs` flag: a positive worker count, or
/// `auto`/`0` for "use all available cores".
///
/// Returns the value to pass to `isol_bench::runner::set_jobs` (where 0
/// means auto-detect).
///
/// # Errors
///
/// Returns a human-readable message when the value is not a count.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    if value.eq_ignore_ascii_case("auto") {
        return Ok(0);
    }
    value
        .parse::<usize>()
        .map_err(|_| format!("invalid --jobs value `{value}` (expected a number or `auto`)"))
}

/// Parses the value of a `--shards` flag: a positive per-scenario shard
/// count, or `auto`/`0` for "whatever cores `--jobs` leaves free".
///
/// Returns the value to pass to `isol_bench::runner::set_shards` (where
/// 0 means auto-detect).
///
/// # Errors
///
/// Returns a human-readable message when the value is not a count.
pub fn parse_shards(value: &str) -> Result<usize, String> {
    if value.eq_ignore_ascii_case("auto") {
        return Ok(0);
    }
    value
        .parse::<usize>()
        .map_err(|_| format!("invalid --shards value `{value}` (expected a number or `auto`)"))
}

/// One grid cell's wall-clock + cache outcome, reported in the
/// `cells` array of `timings.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Owning experiment (`fig4`, `q10`, ...).
    pub experiment: String,
    /// Cell label (scenario name).
    pub label: String,
    /// Wall-clock spent in the cell, including cache I/O.
    pub seconds: f64,
    /// Cache outcome token (`hit`, `miss`, `bypass`, `off`).
    pub outcome: String,
}

/// Per-experiment wall-clock timings, serialized as machine-readable
/// JSON (hand-rolled: the workspace is offline and carries no JSON
/// dependency). Also carries the per-cell breakdown, the cache traffic
/// summary, and which scheduler produced the run.
#[derive(Debug)]
pub struct Timings {
    fidelity: String,
    jobs: usize,
    entries: Vec<(String, Duration)>,
    scheduler: String,
    shards: usize,
    cache: (usize, usize, usize, usize, usize),
    resilience: ResilienceSummary,
    cells: Vec<CellTiming>,
}

/// Watchdog/retry/resume telemetry for one run, reported under
/// `"resilience"` in `timings.json`. All zeros on a healthy,
/// uninterrupted run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResilienceSummary {
    /// Watchdog soft-deadline fires (cooperative cancels issued).
    pub watchdog_soft: usize,
    /// Watchdog hard-deadline fires (cells declared stuck).
    pub watchdog_hard: usize,
    /// Retry attempts executed after failed attempts.
    pub retries: usize,
    /// Cell labels quarantined after exhausting their retry budget.
    pub quarantined: Vec<String>,
    /// Cells answered from the run journal by `--resume`.
    pub resumed: usize,
}

impl Timings {
    /// Starts an empty collection for a run at the given fidelity with
    /// the given (resolved) worker count.
    #[must_use]
    pub fn new(fidelity: &str, jobs: usize) -> Self {
        Timings {
            fidelity: fidelity.to_owned(),
            jobs,
            entries: Vec::new(),
            scheduler: "sequential".to_owned(),
            shards: 1,
            cache: (0, 0, 0, 0, 0),
            resilience: ResilienceSummary::default(),
            cells: Vec::new(),
        }
    }

    /// Records one experiment's wall-clock duration.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.entries.push((name.to_owned(), elapsed));
    }

    /// Names the scheduler that produced the run (`sequential` per
    /// experiment, or `global` for the cross-experiment batch).
    pub fn set_scheduler(&mut self, scheduler: &str) {
        self.scheduler = scheduler.to_owned();
    }

    /// Records the resolved per-scenario shard count the run used (the
    /// engine's intra-scenario parallelism; results are shard-invariant).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// Records the run's cache traffic counters. `corrupt` counts
    /// entries that were present on disk but failed validation (each is
    /// also a miss).
    pub fn set_cache_summary(
        &mut self,
        hits: usize,
        misses: usize,
        stored: usize,
        bypassed: usize,
        corrupt: usize,
    ) {
        self.cache = (hits, misses, stored, bypassed, corrupt);
    }

    /// Records the run's watchdog/retry/resume telemetry.
    pub fn set_resilience(&mut self, resilience: ResilienceSummary) {
        self.resilience = resilience;
    }

    /// Replaces the per-cell breakdown. Entries are sorted by
    /// (experiment, label) so the array is deterministic regardless of
    /// worker interleaving (only the `seconds` values vary run to run).
    pub fn set_cells(&mut self, mut cells: Vec<CellTiming>) {
        cells.sort_by(|a, b| (&a.experiment, &a.label).cmp(&(&b.experiment, &b.label)));
        self.cells = cells;
    }

    /// Renders the JSON document.
    #[must_use]
    pub fn to_json(&self, total: Duration) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"fidelity\": \"{}\",\n",
            json_escape(&self.fidelity)
        ));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!(
            "  \"total_seconds\": {:.3},\n",
            total.as_secs_f64()
        ));
        s.push_str("  \"experiments\": [\n");
        for (i, (name, d)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.3}}}{comma}\n",
                json_escape(name),
                d.as_secs_f64()
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"scheduler\": {{\"kind\": \"{}\", \"shards\": {}}},\n",
            json_escape(&self.scheduler),
            self.shards
        ));
        let (hits, misses, stored, bypassed, corrupt) = self.cache;
        s.push_str(&format!(
            "  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"stored\": {stored}, \"bypassed\": {bypassed}, \"corrupt\": {corrupt}}},\n",
        ));
        let r = &self.resilience;
        let quarantined = r
            .quarantined
            .iter()
            .map(|l| format!("\"{}\"", json_escape(l)))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "  \"resilience\": {{\"watchdog_soft\": {}, \"watchdog_hard\": {}, \"retries\": {}, \"quarantined\": [{quarantined}], \"resumed\": {}}},\n",
            r.watchdog_soft, r.watchdog_hard, r.retries, r.resumed
        ));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"experiment\": \"{}\", \"label\": \"{}\", \"seconds\": {:.6}, \"outcome\": \"{}\"}}{comma}\n",
                json_escape(&c.experiment),
                json_escape(&c.label),
                c.seconds,
                json_escape(&c.outcome)
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: &str, total: Duration) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json(total).as_bytes())
    }
}

/// One experiment's engine-profile sample: how many simulation events
/// it popped, at what rate, and the largest pending-event backlog any
/// of its runs reached.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Experiment name (`fig4`, `q10`, ...).
    pub name: String,
    /// Simulation runs the experiment executed.
    pub runs: u64,
    /// Events popped across those runs.
    pub events: u64,
    /// Events per wall-clock second (`events / elapsed`).
    pub pops_per_sec: f64,
    /// Peak pending events in any single run.
    pub peak_pending: u64,
    /// Scenario runs that executed on more than one engine shard.
    pub sharded_runs: u64,
    /// Times a shard coordinator blocked on a worker's journal batch
    /// (timing-dependent; profiling signal only).
    pub barrier_stalls: u64,
    /// Journal batches that crossed shard→coordinator mailboxes.
    pub mailbox_batches: u64,
    /// Per-subsystem `(wall ns, calls)` deltas, indexed like
    /// [`host_sim::stats::SUBSYS_NAMES`]. All zero unless subsystem
    /// timing was enabled for the run.
    pub subsys: [(u64, u64); 5],
}

/// Per-experiment engine profiles (the `figures --profile` payload),
/// serialized next to [`Timings`] as `profile.json`.
///
/// Samples come from `host_sim::stats` counter deltas around each
/// experiment; with `--jobs > 1` concurrent experiments overlap in the
/// deltas, so profile with `--jobs 1` for clean attribution.
#[derive(Debug, Default)]
pub struct Profiles {
    entries: Vec<ProfileEntry>,
    /// Run-level wake-tournament occupancy `(active high-water mark,
    /// provisioned leaves)` from the merged engine, if any merged run
    /// executed.
    tourney: Option<(u64, u64)>,
}

impl Profiles {
    /// Starts an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Profiles::default()
    }

    /// Records one experiment's sample and returns the human-readable
    /// one-liner the harness prints alongside the tables.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        name: &str,
        runs: u64,
        events: u64,
        elapsed: Duration,
        peak: u64,
        sharded: (u64, u64, u64),
    ) -> String {
        self.record_with_subsys(name, runs, events, elapsed, peak, sharded, [(0, 0); 5])
    }

    /// [`record`](Profiles::record) plus per-subsystem `(ns, calls)`
    /// deltas (see [`host_sim::stats::subsys_snapshot`]).
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_subsys(
        &mut self,
        name: &str,
        runs: u64,
        events: u64,
        elapsed: Duration,
        peak: u64,
        sharded: (u64, u64, u64),
        subsys: [(u64, u64); 5],
    ) -> String {
        let pops_per_sec = if elapsed.as_secs_f64() > 0.0 {
            events as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        let (sharded_runs, barrier_stalls, mailbox_batches) = sharded;
        self.entries.push(ProfileEntry {
            name: name.to_owned(),
            runs,
            events,
            pops_per_sec,
            peak_pending: peak,
            sharded_runs,
            barrier_stalls,
            mailbox_batches,
            subsys,
        });
        let shard_note = if sharded_runs > 0 {
            format!(", {sharded_runs} sharded ({barrier_stalls} stalls, {mailbox_batches} batches)")
        } else {
            String::new()
        };
        let subsys_note = if subsys.iter().any(|&(ns, _)| ns > 0) {
            let total: u64 = subsys.iter().map(|&(ns, _)| ns).sum();
            let mut parts = Vec::new();
            for (name, &(ns, _)) in host_sim::stats::SUBSYS_NAMES.iter().zip(&subsys) {
                if ns > 0 {
                    parts.push(format!("{name} {:.0}%", 100.0 * ns as f64 / total as f64));
                }
            }
            format!(", subsys: {}", parts.join(" / "))
        } else {
            String::new()
        };
        format!(
            "(profile: {runs} runs, {events} events, {:.2} Mpops/s, peak pending {peak}{shard_note}{subsys_note})",
            pops_per_sec / 1e6
        )
    }

    /// Records the run-level wake-tournament occupancy (merged engine
    /// only): the active-leaf high-water mark and the provisioned leaf
    /// count. `1 - hwm/leaves` is the suppressed-tenant ratio.
    pub fn set_tourney(&mut self, active_hwm: u64, leaves: u64) {
        if leaves > 0 {
            self.tourney = Some((active_hwm, leaves));
        }
    }

    /// Recorded samples, in run order.
    #[must_use]
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Renders the JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"experiments\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            // The subsys object appears only when timing was on, so
            // profiles taken without `--profile`'s sequential scheduler
            // keep the compact shape.
            let subsys = if e.subsys.iter().any(|&(ns, n)| ns > 0 || n > 0) {
                let fields: Vec<String> = host_sim::stats::SUBSYS_NAMES
                    .iter()
                    .zip(&e.subsys)
                    .map(|(name, &(ns, n))| format!("\"{name}\": {{\"ns\": {ns}, \"calls\": {n}}}"))
                    .collect();
                format!(", \"subsys\": {{{}}}", fields.join(", "))
            } else {
                String::new()
            };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"runs\": {}, \"events\": {}, \"pops_per_sec\": {:.0}, \"peak_pending\": {}, \"sharded_runs\": {}, \"barrier_stalls\": {}, \"mailbox_batches\": {}{subsys}}}{comma}\n",
                json_escape(&e.name),
                e.runs,
                e.events,
                e.pops_per_sec,
                e.peak_pending,
                e.sharded_runs,
                e.barrier_stalls,
                e.mailbox_batches
            ));
        }
        s.push_str("  ]");
        if let Some((hwm, leaves)) = self.tourney {
            s.push_str(&format!(
                ",\n  \"tourney\": {{\"active_hwm\": {hwm}, \"leaves\": {leaves}, \"suppressed_ratio\": {:.4}}}",
                1.0 - hwm as f64 / leaves as f64
            ));
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// One grid cell that failed instead of producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureEntry {
    /// The experiment the cell belonged to (`q_faults`, `fig5`, ...).
    pub experiment: String,
    /// The cell's submission index within its batch.
    pub index: usize,
    /// The cell's label (scenario name, or `#index`).
    pub label: String,
    /// The panic payload or cancellation cause, stringified.
    pub message: String,
    /// Structured failure class token (`panic`, `timed_out`,
    /// `cancelled`, `cache_corrupt`, `invariant_violation`) — the same
    /// taxonomy the run journal records.
    pub class: String,
    /// Attempts the cell consumed before being given up on.
    pub attempts: u32,
}

/// Grid cells that failed during a `figures` run, serialized as
/// `failures.json` next to the CSVs (same hand-rolled JSON as
/// [`Timings`]). The file is written on every run — an empty
/// `failures` array is the healthy signal, a populated one names each
/// failing cell while the surviving cells' partial CSVs stand.
#[derive(Debug, Default)]
pub struct Failures {
    entries: Vec<FailureEntry>,
}

impl Failures {
    /// Starts an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Failures::default()
    }

    /// Records one failed cell.
    pub fn record(
        &mut self,
        experiment: &str,
        index: usize,
        label: &str,
        message: &str,
        class: &str,
        attempts: u32,
    ) {
        self.entries.push(FailureEntry {
            experiment: experiment.to_owned(),
            index,
            label: label.to_owned(),
            message: message.to_owned(),
            class: class.to_owned(),
            attempts,
        });
    }

    /// Whether any cell failed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of failed cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Recorded failures, in record order.
    #[must_use]
    pub fn entries(&self) -> &[FailureEntry] {
        &self.entries
    }

    /// Renders the JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"failures\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"experiment\": \"{}\", \"index\": {}, \"label\": \"{}\", \"message\": \"{}\", \"class\": \"{}\", \"attempts\": {}}}{comma}\n",
                json_escape(&e.experiment),
                e.index,
                json_escape(&e.label),
                json_escape(&e.message),
                json_escape(&e.class),
                e.attempts
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses the figure-selection arguments of the `figures` binary.
/// Returns the normalized list of experiment names to run.
///
/// # Errors
///
/// Returns the offending token when it is not a known experiment.
pub fn parse_selection<I: IntoIterator<Item = String>>(args: I) -> Result<Vec<String>, String> {
    // The paper artifacts `all` expands to.
    const DEFAULT: [&str; 10] = [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "q10",
        "table1",
        "optane",
        "writeback",
    ];
    // Extra studies that must be requested by name (or via their own
    // flag, like `--faults` for the fault-injection study).
    const EXTRA: [&str; 3] = ["q_faults", "fleet_scale", "app_mix"];
    let mut out = Vec::new();
    for a in args {
        let a = a.to_lowercase();
        match a.as_str() {
            "all" => {
                out = DEFAULT.iter().map(|s| (*s).to_owned()).collect();
                return Ok(out);
            }
            k if DEFAULT.contains(&k) || EXTRA.contains(&k) => out.push(a),
            other => return Err(other.to_owned()),
        }
    }
    if out.is_empty() {
        out = DEFAULT.iter().map(|s| (*s).to_owned()).collect();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_selection_means_all() {
        let sel = parse_selection(Vec::new()).unwrap();
        assert_eq!(sel.len(), 10);
        assert!(sel.contains(&"table1".to_owned()));
        assert!(sel.contains(&"optane".to_owned()));
    }

    #[test]
    fn explicit_selection_is_kept() {
        let sel = parse_selection(vec!["fig3".into(), "Q10".into()]).unwrap();
        assert_eq!(sel, vec!["fig3", "q10"]);
    }

    #[test]
    fn all_overrides() {
        let sel = parse_selection(vec!["fig3".into(), "all".into()]).unwrap();
        assert_eq!(sel.len(), 10);
    }

    #[test]
    fn unknown_is_an_error() {
        assert_eq!(parse_selection(vec!["fig9".into()]), Err("fig9".to_owned()));
    }

    #[test]
    fn q_faults_is_selectable_but_not_in_all() {
        let sel = parse_selection(vec!["q_faults".into()]).unwrap();
        assert_eq!(sel, vec!["q_faults"]);
        let all = parse_selection(vec!["all".into()]).unwrap();
        assert!(!all.contains(&"q_faults".to_owned()));
        let sel = parse_selection(vec!["fig3".into(), "q_faults".into()]).unwrap();
        assert_eq!(sel, vec!["fig3", "q_faults"]);
    }

    #[test]
    fn fleet_scale_is_selectable_but_not_in_all() {
        let sel = parse_selection(vec!["fleet_scale".into()]).unwrap();
        assert_eq!(sel, vec!["fleet_scale"]);
        let all = parse_selection(vec!["all".into()]).unwrap();
        assert!(!all.contains(&"fleet_scale".to_owned()));
    }

    #[test]
    fn app_mix_is_selectable_but_not_in_all() {
        let sel = parse_selection(vec!["app_mix".into()]).unwrap();
        assert_eq!(sel, vec!["app_mix"]);
        let all = parse_selection(vec!["all".into()]).unwrap();
        assert!(!all.contains(&"app_mix".to_owned()));
    }

    #[test]
    fn failures_json_is_well_formed() {
        let mut f = Failures::new();
        assert!(f.is_empty());
        let empty = f.to_json();
        assert!(empty.contains("\"failures\": ["));
        f.record(
            "q_faults",
            4,
            "q_faults-io.cost",
            "boom \"quoted\"",
            "timed_out",
            2,
        );
        assert_eq!(f.len(), 1);
        let json = f.to_json();
        assert!(json.contains(
            "{\"experiment\": \"q_faults\", \"index\": 4, \
             \"label\": \"q_faults-io.cost\", \"message\": \"boom \\\"quoted\\\"\", \
             \"class\": \"timed_out\", \"attempts\": 2}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn jobs_values_parse() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs("auto"), Ok(0));
        assert_eq!(parse_jobs("0"), Ok(0));
        assert!(parse_jobs("four").is_err());
        assert!(parse_jobs("-1").is_err());
    }

    #[test]
    fn timings_json_is_well_formed() {
        let mut t = Timings::new("standard", 8);
        t.record("fig3", Duration::from_millis(1500));
        t.record("fig4", Duration::from_millis(250));
        let json = t.to_json(Duration::from_millis(1750));
        assert!(json.contains("\"fidelity\": \"standard\""));
        assert!(json.contains("\"jobs\": 8"));
        assert!(json.contains("{\"name\": \"fig3\", \"seconds\": 1.500},"));
        assert!(json.contains("{\"name\": \"fig4\", \"seconds\": 0.250}\n"));
        assert!(json.contains("\"total_seconds\": 1.750"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn timings_json_carries_scheduler_cache_and_cells() {
        let mut t = Timings::new("smoke", 4);
        t.record("fig4", Duration::from_millis(100));
        t.set_scheduler("global");
        t.set_cache_summary(10, 2, 2, 1, 1);
        t.set_resilience(ResilienceSummary {
            watchdog_soft: 2,
            watchdog_hard: 1,
            retries: 3,
            quarantined: vec!["fig4-hung".into()],
            resumed: 5,
        });
        t.set_cells(vec![
            CellTiming {
                experiment: "fig4".into(),
                label: "fig4-none-1ssd-4".into(),
                seconds: 0.25,
                outcome: "miss".into(),
            },
            CellTiming {
                experiment: "fig3".into(),
                label: "fig3-none-16".into(),
                seconds: 0.125,
                outcome: "hit".into(),
            },
        ]);
        t.set_shards(4);
        let json = t.to_json(Duration::from_millis(100));
        assert!(json.contains("\"scheduler\": {\"kind\": \"global\", \"shards\": 4}"));
        assert!(json.contains(
            "\"cache\": {\"hits\": 10, \"misses\": 2, \"stored\": 2, \"bypassed\": 1, \"corrupt\": 1}"
        ));
        assert!(json.contains(
            "\"resilience\": {\"watchdog_soft\": 2, \"watchdog_hard\": 1, \"retries\": 3, \
             \"quarantined\": [\"fig4-hung\"], \"resumed\": 5}"
        ));
        // Cells are sorted by (experiment, label): fig3 first.
        let f3 = json.find("fig3-none-16").unwrap();
        let f4 = json.find("fig4-none-1ssd-4").unwrap();
        assert!(f3 < f4);
        assert!(json.contains(
            "{\"experiment\": \"fig3\", \"label\": \"fig3-none-16\", \
             \"seconds\": 0.125000, \"outcome\": \"hit\"}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn timings_json_escapes_strings() {
        let t = Timings::new("we\"ird\\name", 1);
        let json = t.to_json(Duration::ZERO);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn profiles_record_and_serialize() {
        let mut p = Profiles::new();
        let line = p.record(
            "fig4",
            12,
            3_000_000,
            Duration::from_secs(2),
            512,
            (0, 0, 0),
        );
        assert!(line.contains("12 runs"));
        assert!(line.contains("3000000 events"));
        assert!(line.contains("1.50 Mpops/s"));
        assert!(line.contains("peak pending 512"));
        assert!(!line.contains("sharded"));
        let line = p.record(
            "q10",
            6,
            1_000_000,
            Duration::from_millis(500),
            64,
            (6, 2, 40),
        );
        assert!(line.contains("6 sharded (2 stalls, 40 batches)"));
        assert_eq!(p.entries().len(), 2);
        let json = p.to_json();
        assert!(json.contains("{\"name\": \"fig4\", \"runs\": 12, \"events\": 3000000, \"pops_per_sec\": 1500000, \"peak_pending\": 512, \"sharded_runs\": 0, \"barrier_stalls\": 0, \"mailbox_batches\": 0},"));
        assert!(json.contains("{\"name\": \"q10\", \"runs\": 6, \"events\": 1000000, \"pops_per_sec\": 2000000, \"peak_pending\": 64, \"sharded_runs\": 6, \"barrier_stalls\": 2, \"mailbox_batches\": 40}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn profiles_subsys_and_tourney_serialize() {
        let mut p = Profiles::new();
        let mut subsys = [(0u64, 0u64); 5];
        subsys[0] = (750_000, 1_000); // arrival-gen
        subsys[4] = (250_000, 2_000); // stats
        let line = p.record_with_subsys(
            "fleet_scale",
            3,
            900_000,
            Duration::from_secs(1),
            128,
            (0, 0, 0),
            subsys,
        );
        assert!(
            line.contains("subsys: arrival-gen 75% / stats 25%"),
            "{line}"
        );
        p.set_tourney(214, 4096);
        let json = p.to_json();
        assert!(json.contains("\"subsys\": {\"arrival-gen\": {\"ns\": 750000, \"calls\": 1000}"));
        assert!(json.contains(
            "\"tourney\": {\"active_hwm\": 214, \"leaves\": 4096, \"suppressed_ratio\": 0.9478}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Zero leaves never records (legacy-only runs).
        let mut q = Profiles::new();
        q.set_tourney(0, 0);
        assert!(!q.to_json().contains("tourney"));
    }

    #[test]
    fn profiles_zero_elapsed_yields_zero_rate() {
        let mut p = Profiles::new();
        p.record("x", 1, 10, Duration::ZERO, 1, (0, 0, 0));
        assert_eq!(p.entries()[0].pops_per_sec, 0.0);
    }

    #[test]
    fn shards_values_parse() {
        assert_eq!(parse_shards("4"), Ok(4));
        assert_eq!(parse_shards("auto"), Ok(0));
        assert_eq!(parse_shards("0"), Ok(0));
        assert!(parse_shards("many").is_err());
    }
}
