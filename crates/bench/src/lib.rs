//! # isol-bench-harness — benchmark harness and figure regeneration
//!
//! Two entry points:
//!
//! * the **`figures` binary** regenerates every table and figure of the
//!   paper (`cargo run --release -p isol-bench-harness --bin figures --
//!   all`), printing the same rows/series the paper reports and writing
//!   CSVs under [`OUTPUT_DIR`],
//! * the **Criterion benches** (`cargo bench`) cover the simulator's
//!   hot paths (`engine`), a scaled-down run of every paper experiment
//!   (`paper_experiments`), and the design-choice ablations from
//!   DESIGN.md §8 (`ablations`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The directory experiment CSVs are written into.
pub const OUTPUT_DIR: &str = "target/isol-bench";

/// Parses the figure-selection arguments of the `figures` binary.
/// Returns the normalized list of experiment names to run.
///
/// # Errors
///
/// Returns the offending token when it is not a known experiment.
pub fn parse_selection<I: IntoIterator<Item = String>>(args: I) -> Result<Vec<String>, String> {
    const KNOWN: [&str; 10] =
        ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "q10", "table1", "optane", "writeback"];
    let mut out = Vec::new();
    for a in args {
        let a = a.to_lowercase();
        match a.as_str() {
            "all" => {
                out = KNOWN.iter().map(|s| (*s).to_owned()).collect();
                return Ok(out);
            }
            k if KNOWN.contains(&k) => out.push(a),
            other => return Err(other.to_owned()),
        }
    }
    if out.is_empty() {
        out = KNOWN.iter().map(|s| (*s).to_owned()).collect();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_selection_means_all() {
        let sel = parse_selection(Vec::new()).unwrap();
        assert_eq!(sel.len(), 10);
        assert!(sel.contains(&"table1".to_owned()));
        assert!(sel.contains(&"optane".to_owned()));
    }

    #[test]
    fn explicit_selection_is_kept() {
        let sel = parse_selection(vec!["fig3".into(), "Q10".into()]).unwrap();
        assert_eq!(sel, vec!["fig3", "q10"]);
    }

    #[test]
    fn all_overrides() {
        let sel = parse_selection(vec!["fig3".into(), "all".into()]).unwrap();
        assert_eq!(sel.len(), 10);
    }

    #[test]
    fn unknown_is_an_error() {
        assert_eq!(parse_selection(vec!["fig9".into()]), Err("fig9".to_owned()));
    }
}
