//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [--fidelity smoke|standard|full] [--smoke] [--jobs N|auto]
//!         [--shards N|auto] [--no-cache] [--refresh] [--profile]
//!         [--faults] [--trace[=N]] [--inject-panic LABEL]
//!         [--inject-hang LABEL] [--resume] [--watchdog-soft-ms N]
//!         [--watchdog-hard-ms N] [--cell-retries N]
//!         [--retry-backoff-ms N] [--scenario FILE.toml]...
//!         [fig2 fig3 fig4 fig5 fig6 fig7 q10 table1 optane writeback
//!          q_faults fleet_scale app_mix | all]
//! ```
//!
//! Prints the paper-style tables and writes CSVs under
//! `target/isol-bench/`. `table1` needs the results of figs 3–7 and
//! Q10; when selected it runs whatever of those were not already
//! selected.
//!
//! `--jobs` sets how many scenarios run concurrently (default: all
//! available cores). `--shards` sets how many engine shards a *single*
//! scenario may use when its devices decouple (default: the cores left
//! over after `--jobs`; `jobs × shards` is clamped to the available
//! cores with a warning instead of silently oversubscribing). Output is
//! byte-identical for every jobs and shards value; only wall-clock time
//! changes. Per-experiment and per-cell timings land in
//! `target/isol-bench/timings.json`.
//!
//! # Incremental runs
//!
//! Grid-cell results are cached content-addressed under
//! `target/isol-bench/cache/` (see `isol_bench::cache`): a cell whose
//! scenario, fidelity, and engine version are unchanged is loaded from
//! disk instead of re-simulated, so warm reruns are near-instant and
//! byte-identical to cold runs by construction. `--no-cache` disables
//! the cache entirely (every cell recomputes, nothing is read or
//! written — the pre-cache behavior); `--refresh` recomputes every cell
//! and overwrites its entry. Faulted cells (`q_faults`) always run
//! live.
//!
//! # Scheduling
//!
//! By default the cells of *all* selected experiments are concatenated
//! into one batch for a single global worker pool, so the pool never
//! drains at an experiment boundary. Results return positionally, so
//! every CSV is byte-identical to the per-experiment scheduling for any
//! `--jobs` value. `--profile` falls back to running experiments
//! sequentially (each on its own pool) because engine-counter deltas
//! cannot be attributed when experiments overlap; it additionally
//! reports each experiment's engine profile — simulation runs, events
//! popped, pop rate, and peak pending events — and writes
//! `target/isol-bench/profile.json`. With `--jobs > 1` concurrent
//! scenarios of one experiment still overlap in the counter deltas; use
//! `--jobs 1` for clean attribution.
//!
//! `--faults` adds the fault-injection isolation study (`q_faults`) to
//! the selection; `--smoke` is shorthand for `--fidelity smoke`.
//!
//! # Scenario files
//!
//! `--scenario FILE.toml` runs a declarative scenario file (see
//! `isol_bench::scenario_file` for the schema and `scenarios/` for
//! committed examples) and emits one per-tenant table. May be repeated.
//! With no explicit experiment selection alongside, only the scenario
//! files run; output is byte-identical across `--jobs`/`--shards`
//! values and event-queue backends like every other artifact.
//!
//! # Tracing
//!
//! `--trace` records the full request lifecycle of every cell and
//! writes two files per cell under `target/isol-bench/traces/`:
//! `<label>.trace.jsonl` (the raw event stream, input to the `traceck`
//! checker) and `<label>.chrome.json` (loadable in `chrome://tracing` /
//! Perfetto). `--trace=N` sets the per-cell ring-buffer capacity in
//! events (default 65536); once full, the oldest events are evicted and
//! counted in the JSONL header's `dropped` field. Traced cells always
//! bypass the result cache. See EXPERIMENTS.md ("Tracing a run") and
//! DESIGN.md §13 for the schema.
//!
//! # Graceful degradation
//!
//! A failing grid cell no longer kills the run: a panicking or hung
//! cell is retried (with backoff) up to `--cell-retries` times, then
//! quarantined and dropped; the remaining cells complete, partial CSVs
//! are written, and `target/isol-bench/failures.json` names every
//! failed cell with a structured class (`panic`, `timed_out`,
//! `cancelled`, `cache_corrupt`, `invariant_violation`) and its attempt
//! count (the file is written on every run; an empty `failures` array
//! is the healthy signal). The process still exits 0 — CI distinguishes
//! degraded runs by inspecting `failures.json`. `--inject-panic LABEL`
//! deliberately panics the cell with that label (e.g.
//! `q_faults-io.cost`); `--inject-hang LABEL` deliberately hangs it
//! (exercising the watchdog → cancel → retry → quarantine chain, and
//! arming a default watchdog if none was configured). Failed cells are
//! never written to the cache.
//!
//! # Watchdog
//!
//! `--watchdog-soft-ms N` arms every cell attempt with a cooperative
//! cancellation deadline: a cell still running after N ms is cancelled
//! (the simulation event loops poll the token and unwind with partial
//! stats, which are discarded) and the attempt counts as `timed_out`.
//! `--watchdog-hard-ms N` additionally declares the cell stuck for
//! accounting once N ms pass. Both default to off; watchdog fires,
//! retries, and quarantined labels are reported under `"resilience"` in
//! `timings.json`.
//!
//! # Crash-safe resume
//!
//! Every run appends completed cells (fingerprint, outcome, result
//! rows) to an append-only journal at
//! `target/isol-bench/journal/run.jsonl`, flushed per cell — a SIGKILL
//! can at worst tear the final line, which the parser treats as a clean
//! end of journal. `--resume` replays the journal of an interrupted run
//! (same engine salt + fidelity): already-completed cells return their
//! journaled rows without simulating, so the resumed run's CSVs and
//! `timings.json` cell outcomes are byte-identical to an uninterrupted
//! run. Without `--resume` the journal is truncated and started fresh.
//! Stale cache temp files (`*.tmp-<pid>` from killed runs) are swept at
//! startup.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use isol_bench::cell::FinishFn;
use isol_bench::experiments::{
    app_mix, fig2, fig3, fig4, fig5, fig6, fig7, fleet_scale, optane, q10, q_faults, table1,
    writeback,
};
use isol_bench::{cache, journal, runner, Cell, Fidelity, OutputSink, Staged};
use isol_bench_harness::{
    parse_jobs, parse_selection, parse_shards, CellTiming, Failures, Profiles, ResilienceSummary,
    Timings, OUTPUT_DIR,
};

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One experiment's slice of the global cell batch.
struct Span {
    name: &'static str,
    start: usize,
    end: usize,
}

/// Appends a staged experiment's cells to the global batch, records its
/// span, and hands back the typed finishing step.
fn stage_push<R>(staged: Staged<R>, batch: &mut Vec<Cell>, spans: &mut Vec<Span>) -> FinishFn<R> {
    let name = staged.name();
    let (cells, finish) = staged.into_parts();
    let start = batch.len();
    batch.extend(cells);
    spans.push(Span {
        name,
        start,
        end: batch.len(),
    });
    finish
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut fidelity = Fidelity::Standard;
    let mut profile = false;
    let mut no_cache = false;
    let mut refresh = false;
    let mut resume = false;
    let mut inject_hang = false;
    let mut watchdog_soft: Option<Duration> = None;
    let mut watchdog_hard: Option<Duration> = None;
    let mut rest = Vec::new();
    let mut scenario_files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    // Parses the millisecond value of a watchdog/backoff flag.
    let parse_ms = |flag: &str, v: Option<String>| -> Result<Duration, String> {
        match v.as_deref().map(str::parse::<u64>) {
            Some(Ok(ms)) if ms > 0 => Ok(Duration::from_millis(ms)),
            Some(_) => Err(format!("{flag} needs a positive millisecond count")),
            None => Err(format!("{flag} needs a value (milliseconds)")),
        }
    };
    while let Some(a) = args.next() {
        if a == "--profile" {
            profile = true;
        } else if a == "--smoke" {
            fidelity = Fidelity::Smoke;
        } else if a == "--no-cache" {
            no_cache = true;
        } else if a == "--refresh" {
            refresh = true;
        } else if a == "--faults" {
            rest.push("q_faults".to_owned());
        } else if a == "--trace" {
            isol_bench::tracing::set_capacity(Some(isol_bench::tracing::DEFAULT_CAPACITY));
        } else if let Some(v) = a.strip_prefix("--trace=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => isol_bench::tracing::set_capacity(Some(n)),
                _ => {
                    eprintln!("--trace={v}: capacity must be a positive event count");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--inject-panic" {
            match args.next() {
                Some(label) => runner::set_inject_panic(Some(&label)),
                None => {
                    eprintln!("--inject-panic needs a cell label (e.g. q_faults-io.cost)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--inject-hang" {
            match args.next() {
                Some(label) => {
                    runner::set_inject_hang(Some(&label));
                    inject_hang = true;
                }
                None => {
                    eprintln!("--inject-hang needs a cell label (e.g. fig4-none-1ssd-1)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--scenario" {
            match args.next() {
                Some(path) => scenario_files.push(path),
                None => {
                    eprintln!("--scenario needs a file path (e.g. scenarios/app_mix.toml)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--resume" {
            resume = true;
        } else if a == "--watchdog-soft-ms" {
            match parse_ms(&a, args.next()) {
                Ok(d) => watchdog_soft = Some(d),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--watchdog-hard-ms" {
            match parse_ms(&a, args.next()) {
                Ok(d) => watchdog_hard = Some(d),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--cell-retries" {
            match args.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) => runner::set_cell_retries(n),
                _ => {
                    eprintln!("--cell-retries needs a count (0 disables retry)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--retry-backoff-ms" {
            match parse_ms(&a, args.next()) {
                Ok(d) => runner::set_retry_backoff(d),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--fidelity" {
            match args.next().as_deref() {
                Some("smoke") => fidelity = Fidelity::Smoke,
                Some("standard") => fidelity = Fidelity::Standard,
                Some("full") => fidelity = Fidelity::Full,
                other => {
                    eprintln!("unknown fidelity {other:?} (smoke|standard|full)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--jobs" {
            match args.next().as_deref().map(parse_jobs) {
                Some(Ok(n)) => runner::set_jobs(n),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--jobs needs a value (a worker count or `auto`)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--shards" {
            match args.next().as_deref().map(parse_shards) {
                Some(Ok(n)) => runner::set_shards(n),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--shards needs a value (a shard count or `auto`)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            rest.push(a);
        }
    }
    // `--scenario` alone runs only the scenario files; naming
    // experiments next to it runs both.
    let scenarios_only = !scenario_files.is_empty() && rest.is_empty();
    let selection = match parse_selection(rest) {
        Ok(s) => s,
        Err(bad) => {
            eprintln!(
                "unknown experiment `{bad}`; known: fig2..fig7, q10, table1, optane, \
                 writeback, q_faults, fleet_scale, app_mix, all"
            );
            return ExitCode::FAILURE;
        }
    };
    if no_cache {
        cache::set_mode(cache::CacheMode::Off);
    } else {
        cache::set_dir(cache::DEFAULT_DIR);
        cache::set_mode(if refresh {
            cache::CacheMode::Refresh
        } else {
            cache::CacheMode::ReadWrite
        });
        // A killed run can leave half-written `*.tmp-<pid>` files next
        // to the entries; they are dead weight (stores rename away
        // their temp file on success), so sweep them at open time.
        let swept = cache::sweep_stale_tmp(&cache::dir());
        if swept > 0 {
            eprintln!("cache: swept {swept} stale temp file(s) left by interrupted runs");
        }
    }
    cache::reset_stats();
    runner::reset_resilience();
    // A hang test without a watchdog would hang forever; give
    // --inject-hang a deadline unless one was configured explicitly.
    if inject_hang && watchdog_soft.is_none() {
        watchdog_soft = Some(Duration::from_millis(2_000));
        if watchdog_hard.is_none() {
            watchdog_hard = Some(Duration::from_millis(5_000));
        }
    }
    runner::set_watchdog(watchdog_soft, watchdog_hard);
    let fidelity_token = format!("{fidelity:?}").to_lowercase();
    let journal_dir = std::path::PathBuf::from(format!("{OUTPUT_DIR}/journal"));
    match journal::arm(&journal_dir, resume, &fidelity_token) {
        Ok(sum) => {
            if resume && sum.fresh {
                eprintln!(
                    "resume: no matching journal (missing, or different engine salt/fidelity); \
                     starting fresh"
                );
            } else if resume {
                eprintln!(
                    "resume: {} completed cell(s) replayable from {}",
                    sum.replayable,
                    journal::file_path(&journal_dir).display()
                );
            }
        }
        Err(e) => {
            // The journal is advisory: a run that cannot journal still
            // produces correct output, it just cannot be resumed.
            eprintln!(
                "warning: cannot arm run journal in {}: {e}",
                journal_dir.display()
            );
        }
    }

    let mut sink = match OutputSink::with_dir(OUTPUT_DIR) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {OUTPUT_DIR}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = runner::jobs();
    // Sharding is bit-exact, so capping it only changes wall-clock time:
    // refuse to oversubscribe the machine silently.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards = runner::shards();
    let capped = (cores / jobs).max(1);
    if shards > capped {
        eprintln!(
            "warning: --jobs {jobs} x --shards {shards} oversubscribes {cores} core(s); \
             capping shards to {capped} (results are identical for any shard count)"
        );
        runner::set_shards(capped);
    }
    let shards = runner::shards();
    sink.note(&format!(
        "# isol-bench figure regeneration ({fidelity:?} fidelity, {jobs} jobs, {shards} shards), CSVs in {OUTPUT_DIR}/"
    ));
    if let Some(capacity) = isol_bench::tracing::capacity() {
        isol_bench::tracing::reset_written();
        sink.note(&format!(
            "(tracing: {capacity}-event ring per cell, files in {})",
            isol_bench::tracing::dir().display()
        ));
    }

    // ===== Scenario files =====
    if !scenario_files.is_empty() {
        let started = Instant::now();
        for path in &scenario_files {
            sink.note(&format!("\n=== scenario {path} ==="));
            match isol_bench::scenario_file::run_file(std::path::Path::new(path), &mut sink) {
                Ok(report) => sink.note(&format!(
                    "(scenario ran: {} tenant(s), {} completions)",
                    report.apps.len(),
                    report.apps.iter().map(|a| a.completed).sum::<u64>()
                )),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if scenarios_only {
            sink.note(&format!(
                "\nDone in {:.1?}; {} tables emitted.",
                started.elapsed(),
                sink.emitted().len()
            ));
            return ExitCode::SUCCESS;
        }
    }

    let wants = |name: &str| selection.iter().any(|s| s == name);
    let needs_table1 = wants("table1");
    // --profile attributes engine-counter deltas per experiment, which
    // the cross-experiment batch would smear; it keeps the sequential
    // per-experiment scheduler. Subsystem wall-clock attribution costs
    // two Instant reads per instrumented section, so it's armed only
    // here.
    let global_sched = !profile;
    host_sim::stats::set_subsystem_timing(profile);
    let t0 = Instant::now();
    let mut timings = Timings::new(&format!("{fidelity:?}").to_lowercase(), jobs);
    timings.set_scheduler(if global_sched { "global" } else { "sequential" });
    timings.set_shards(shards);
    let mut profiles = Profiles::new();
    let mut failures = Failures::new();
    let mut batch_cells: Vec<cache::CellStat> = Vec::new();

    // fig2 is standalone; the rest feed Table I.
    let result: std::io::Result<()> = (|| {
        // Samples the engine counters around one experiment and prints
        // the delta (no-op unless --profile).
        macro_rules! profiled {
            ($name:literal, $elapsed:expr, $before:expr) => {
                if profile {
                    let (before, subsys_before) = $before;
                    let after = host_sim::stats::snapshot();
                    let subsys_after = host_sim::stats::subsys_snapshot();
                    let mut subsys = [(0u64, 0u64); 5];
                    for (d, (a, b)) in subsys
                        .iter_mut()
                        .zip(subsys_after.iter().zip(&subsys_before))
                    {
                        *d = (a.0 - b.0, a.1 - b.1);
                    }
                    let line = profiles.record_with_subsys(
                        $name,
                        after.runs - before.runs,
                        after.events_popped - before.events_popped,
                        $elapsed,
                        after.peak_pending,
                        (
                            after.sharded_runs - before.sharded_runs,
                            after.barrier_stalls - before.barrier_stalls,
                            after.mailbox_batches - before.mailbox_batches,
                        ),
                        subsys,
                    );
                    sink.note(&line);
                    let per_shard = host_sim::stats::shard_events();
                    if after.sharded_runs > before.sharded_runs && !per_shard.is_empty() {
                        sink.note(&format!(
                            "(last sharded run: events per shard {per_shard:?})"
                        ));
                    }
                }
            };
        }
        macro_rules! sample_before {
            () => {{
                if profile {
                    host_sim::stats::reset_peak();
                }
                (
                    host_sim::stats::snapshot(),
                    host_sim::stats::subsys_snapshot(),
                )
            }};
        }
        // Runs one experiment (or one finishing step) without letting a
        // panic kill the whole regeneration: cell panics are already
        // caught (and the cells dropped) inside the runner; an
        // experiment-level panic is caught here. Either way the failure
        // lands in failures.json and the remaining experiments still
        // run.
        macro_rules! run_guarded {
            ($name:literal, $body:expr) => {{
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body)).map_err(|p| {
                        let msg = payload_message(p);
                        eprintln!("{} panicked: {msg}", $name);
                        failures.record(
                            $name,
                            0,
                            concat!($name, " (experiment)"),
                            &msg,
                            runner::classify_panic(&msg).as_str(),
                            1,
                        );
                    });
                for f in runner::take_failures() {
                    failures.record(
                        $name,
                        f.index,
                        &f.label,
                        &f.message,
                        f.class.as_str(),
                        f.attempts,
                    );
                }
                match out {
                    Ok(r) => Some(r),
                    Err(()) => None,
                }
            }};
        }

        if global_sched {
            // ===== Global scheduler =====
            // Stage every selected experiment, concatenate the cells
            // into one batch, run the batch on one pool, then finish
            // the experiments in the canonical (sequential) order so
            // every CSV and table appears exactly as before.
            let mut batch: Vec<Cell> = Vec::new();
            let mut spans: Vec<Span> = Vec::new();
            let fin_fig2 =
                wants("fig2").then(|| stage_push(fig2::stage(fidelity), &mut batch, &mut spans));
            let fin_optane = wants("optane")
                .then(|| stage_push(optane::stage(fidelity), &mut batch, &mut spans));
            let fin_writeback = wants("writeback")
                .then(|| stage_push(writeback::stage(fidelity), &mut batch, &mut spans));
            let fin_q_faults = wants("q_faults")
                .then(|| stage_push(q_faults::stage(fidelity), &mut batch, &mut spans));
            let fin_fleet_scale = wants("fleet_scale")
                .then(|| stage_push(fleet_scale::stage(fidelity), &mut batch, &mut spans));
            let fin_app_mix = wants("app_mix")
                .then(|| stage_push(app_mix::stage(fidelity), &mut batch, &mut spans));
            let fin_fig3 = (wants("fig3") || needs_table1)
                .then(|| stage_push(fig3::stage(fidelity), &mut batch, &mut spans));
            let fin_fig4 = (wants("fig4") || needs_table1)
                .then(|| stage_push(fig4::stage(fidelity), &mut batch, &mut spans));
            let fin_fig5 = (wants("fig5") || needs_table1)
                .then(|| stage_push(fig5::stage(fidelity), &mut batch, &mut spans));
            let fin_fig6 = (wants("fig6") || needs_table1)
                .then(|| stage_push(fig6::stage(fidelity), &mut batch, &mut spans));
            let fin_fig7 = (wants("fig7") || needs_table1)
                .then(|| stage_push(fig7::stage(fidelity), &mut batch, &mut spans));
            let fin_q10 = (wants("q10") || needs_table1)
                .then(|| stage_push(q10::stage(fidelity), &mut batch, &mut spans));
            sink.note(&format!(
                "(global scheduler: {} cells from {} experiments on one pool)",
                batch.len(),
                spans.len()
            ));
            let batch_started = Instant::now();
            let mut results = isol_bench::run_cells(batch);
            let batch_elapsed = batch_started.elapsed();
            // Cell panics carry global batch indices; map them back to
            // their experiment and its local submission index.
            for f in runner::take_failures() {
                let (exp, local) = spans
                    .iter()
                    .find(|s| f.index >= s.start && f.index < s.end)
                    .map_or(("batch", f.index), |s| (s.name, f.index - s.start));
                failures.record(
                    exp,
                    local,
                    &f.label,
                    &f.message,
                    f.class.as_str(),
                    f.attempts,
                );
            }
            batch_cells = cache::take_cell_stats();
            sink.note(&format!("(batch ran in {batch_elapsed:.1?})"));
            // An experiment's "seconds" under the global scheduler is
            // the sum of its cells' wall-clock (they overlap other
            // experiments') plus its finishing step.
            let cells_secs = |name: &str| {
                batch_cells
                    .iter()
                    .filter(|c| c.experiment == name)
                    .map(|c| c.seconds)
                    .sum::<f64>()
            };
            macro_rules! finish_exp {
                ($name:literal, $fin:expr) => {{
                    let mut out = None;
                    if let Some(finish) = $fin {
                        let n = spans
                            .iter()
                            .find(|s| s.name == $name)
                            .map_or(0, |s| s.end - s.start);
                        let slice: Vec<_> = results.drain(..n).collect();
                        let started = Instant::now();
                        sink.note(&format!("\n=== {} ===", $name));
                        if let Some(r) = run_guarded!($name, finish(slice, &mut sink)) {
                            out = Some(r?);
                        }
                        let elapsed =
                            started.elapsed() + Duration::from_secs_f64(cells_secs($name));
                        timings.record($name, elapsed);
                        sink.note(&format!(
                            "({} took {:.1?} of cell+finish time)",
                            $name, elapsed
                        ));
                    }
                    out
                }};
            }
            finish_exp!("fig2", fin_fig2);
            finish_exp!("optane", fin_optane);
            finish_exp!("writeback", fin_writeback);
            finish_exp!("q_faults", fin_q_faults);
            finish_exp!("fleet_scale", fin_fleet_scale);
            finish_exp!("app_mix", fin_app_mix);
            let f3 = finish_exp!("fig3", fin_fig3);
            let f4 = finish_exp!("fig4", fin_fig4);
            let f5 = finish_exp!("fig5", fin_fig5);
            let f6 = finish_exp!("fig6", fin_fig6);
            let f7 = finish_exp!("fig7", fin_fig7);
            let q = finish_exp!("q10", fin_q10);
            if needs_table1 {
                if let (Some(f3), Some(f4), Some(f5), Some(f6), Some(f7), Some(q)) = (
                    f3.as_ref(),
                    f4.as_ref(),
                    f5.as_ref(),
                    f6.as_ref(),
                    f7.as_ref(),
                    q.as_ref(),
                ) {
                    let started = Instant::now();
                    sink.note("\n=== table1 ===");
                    let derived =
                        run_guarded!("table1", table1::derive(f3, f4, f5, f6, f7, q, fidelity));
                    if let Some(result) = derived {
                        table1::emit(&result, &mut sink)?;
                        let matches = result
                            .rows
                            .iter()
                            .filter(|r| {
                                table1::paper_verdicts(r.knob).is_some_and(|p| {
                                    p == [r.overhead, r.fairness, r.tradeoffs, r.bursts]
                                })
                            })
                            .count();
                        sink.note(&format!(
                            "verdict rows matching the paper's Table I: {matches}/{}",
                            result.rows.len()
                        ));
                    }
                    timings.record("table1", started.elapsed());
                } else {
                    sink.note("\n(table1 skipped: a prerequisite experiment failed)");
                }
            }
            return Ok(());
        }

        // ===== Sequential scheduler (--profile) =====
        macro_rules! standalone {
            ($name:literal, $module:ident) => {
                if wants($name) {
                    let started = Instant::now();
                    let before = sample_before!();
                    sink.note(&format!("\n=== {} ===", $name));
                    if let Some(r) = run_guarded!($name, $module::run(fidelity, &mut sink)) {
                        r?;
                    }
                    let elapsed = started.elapsed();
                    timings.record($name, elapsed);
                    sink.note(&format!("({} took {:.1?})", $name, elapsed));
                    profiled!($name, elapsed, before);
                }
            };
        }
        standalone!("fig2", fig2);
        standalone!("optane", optane);
        standalone!("writeback", writeback);
        standalone!("q_faults", q_faults);
        standalone!("fleet_scale", fleet_scale);
        standalone!("app_mix", app_mix);
        let mut f3 = None;
        let mut f4 = None;
        let mut f5 = None;
        let mut f6 = None;
        let mut f7 = None;
        let mut q = None;
        macro_rules! stage {
            ($name:literal, $slot:ident, $module:ident) => {
                if wants($name) || needs_table1 {
                    let started = Instant::now();
                    let before = sample_before!();
                    sink.note(&format!("\n=== {} ===", $name));
                    if let Some(r) = run_guarded!($name, $module::run(fidelity, &mut sink)) {
                        $slot = Some(r?);
                    }
                    let elapsed = started.elapsed();
                    timings.record($name, elapsed);
                    sink.note(&format!("({} took {:.1?})", $name, elapsed));
                    profiled!($name, elapsed, before);
                }
            };
        }
        stage!("fig3", f3, fig3);
        stage!("fig4", f4, fig4);
        stage!("fig5", f5, fig5);
        stage!("fig6", f6, fig6);
        stage!("fig7", f7, fig7);
        stage!("q10", q, q10);
        if needs_table1 {
            if let (Some(f3), Some(f4), Some(f5), Some(f6), Some(f7), Some(q)) = (
                f3.as_ref(),
                f4.as_ref(),
                f5.as_ref(),
                f6.as_ref(),
                f7.as_ref(),
                q.as_ref(),
            ) {
                let started = Instant::now();
                sink.note("\n=== table1 ===");
                let derived =
                    run_guarded!("table1", table1::derive(f3, f4, f5, f6, f7, q, fidelity));
                if let Some(result) = derived {
                    table1::emit(&result, &mut sink)?;
                    let matches = result
                        .rows
                        .iter()
                        .filter(|r| {
                            table1::paper_verdicts(r.knob).is_some_and(|p| {
                                p == [r.overhead, r.fairness, r.tradeoffs, r.bursts]
                            })
                        })
                        .count();
                    sink.note(&format!(
                        "verdict rows matching the paper's Table I: {matches}/{}",
                        result.rows.len()
                    ));
                }
                timings.record("table1", started.elapsed());
            } else {
                sink.note("\n(table1 skipped: a prerequisite experiment failed)");
            }
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("figure regeneration failed: {e}");
        return ExitCode::FAILURE;
    }
    let failures_path = format!("{OUTPUT_DIR}/failures.json");
    if let Err(e) = failures.write_json(&failures_path) {
        eprintln!("cannot write {failures_path}: {e}");
        return ExitCode::FAILURE;
    }
    if !failures.is_empty() {
        sink.note(&format!(
            "WARNING: {} cell(s) failed and were dropped; see {failures_path}:",
            failures.len()
        ));
        for f in failures.entries() {
            sink.note(&format!(
                "  - {} cell #{} ({}) [{}, {} attempt(s)]: {}",
                f.experiment, f.index, f.label, f.class, f.attempts, f.message
            ));
        }
    }
    let stats = cache::stats();
    timings.set_cache_summary(
        stats.hits,
        stats.misses,
        stats.stored,
        stats.bypassed,
        stats.corrupt,
    );
    let res = runner::resilience_stats();
    let resumed = journal::resumed_count();
    if res.watchdog_soft + res.watchdog_hard + res.retries > 0 || !res.quarantined.is_empty() {
        sink.note(&format!(
            "(resilience: {} soft / {} hard watchdog fire(s), {} retr{}, {} quarantined)",
            res.watchdog_soft,
            res.watchdog_hard,
            res.retries,
            if res.retries == 1 { "y" } else { "ies" },
            res.quarantined.len()
        ));
    }
    if resumed > 0 {
        sink.note(&format!(
            "(resume: {resumed} cell(s) replayed from the run journal)"
        ));
    }
    timings.set_resilience(ResilienceSummary {
        watchdog_soft: res.watchdog_soft,
        watchdog_hard: res.watchdog_hard,
        retries: res.retries,
        quarantined: res.quarantined,
        resumed,
    });
    batch_cells.extend(cache::take_cell_stats());
    timings.set_cells(
        batch_cells
            .into_iter()
            .map(|c| CellTiming {
                experiment: c.experiment,
                label: c.label,
                seconds: c.seconds,
                outcome: c.outcome,
            })
            .collect(),
    );
    if cache::mode() != cache::CacheMode::Off {
        sink.note(&format!(
            "(cell cache: {} hits, {} misses, {} stored, {} bypassed, {} corrupt — {})",
            stats.hits,
            stats.misses,
            stats.stored,
            stats.bypassed,
            stats.corrupt,
            cache::dir().display()
        ));
    }
    if isol_bench::tracing::enabled() {
        sink.note(&format!(
            "(traces: {} cell(s) written to {})",
            isol_bench::tracing::written(),
            isol_bench::tracing::dir().display()
        ));
    }
    let timings_path = format!("{OUTPUT_DIR}/timings.json");
    if let Err(e) = timings.write_json(&timings_path, t0.elapsed()) {
        eprintln!("cannot write {timings_path}: {e}");
        return ExitCode::FAILURE;
    }
    if profile {
        let s = host_sim::stats::snapshot();
        profiles.set_tourney(s.tourney_active_hwm, s.tourney_leaves);
        let profile_path = format!("{OUTPUT_DIR}/profile.json");
        if let Err(e) = profiles.write_json(&profile_path) {
            eprintln!("cannot write {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
        sink.note(&format!("Engine profiles in {profile_path}."));
    }
    sink.note(&format!(
        "\nDone in {:.1?}; {} tables emitted; timings in {timings_path}.",
        t0.elapsed(),
        sink.emitted().len()
    ));
    ExitCode::SUCCESS
}
