//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [--fidelity smoke|standard|full] [--smoke] [--jobs N|auto]
//!         [--profile] [--faults] [--inject-panic LABEL]
//!         [fig2 fig3 fig4 fig5 fig6 fig7 q10 table1 optane writeback
//!          q_faults | all]
//! ```
//!
//! Prints the paper-style tables and writes CSVs under
//! `target/isol-bench/`. `table1` needs the results of figs 3–7 and
//! Q10; when selected it runs whatever of those were not already
//! selected.
//!
//! `--jobs` sets how many scenarios run concurrently (default: all
//! available cores). Output is byte-identical for every jobs value;
//! only wall-clock time changes. Per-experiment timings land in
//! `target/isol-bench/timings.json`.
//!
//! `--profile` additionally reports each experiment's engine profile —
//! simulation runs, events popped, pop rate, and peak pending events —
//! and writes `target/isol-bench/profile.json`. With `--jobs > 1`
//! concurrent experiments overlap in the counter deltas; use `--jobs 1`
//! for clean attribution.
//!
//! `--faults` adds the fault-injection isolation study (`q_faults`) to
//! the selection; `--smoke` is shorthand for `--fidelity smoke`.
//!
//! # Graceful degradation
//!
//! A panicking grid cell no longer kills the run: the cell is dropped,
//! the remaining cells complete, partial CSVs are written, and
//! `target/isol-bench/failures.json` names every failed cell (the file
//! is written on every run; an empty `failures` array is the healthy
//! signal). The process still exits 0 — CI distinguishes degraded runs
//! by inspecting `failures.json`. `--inject-panic LABEL` deliberately
//! panics the cell with that label (e.g. `q_faults-io.cost`) to
//! exercise this path end to end.

use std::process::ExitCode;
use std::time::Instant;

use isol_bench::experiments::{
    fig2, fig3, fig4, fig5, fig6, fig7, optane, q10, q_faults, table1, writeback,
};
use isol_bench::{runner, Fidelity, OutputSink};
use isol_bench_harness::{parse_jobs, parse_selection, Failures, Profiles, Timings, OUTPUT_DIR};

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut fidelity = Fidelity::Standard;
    let mut profile = false;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--profile" {
            profile = true;
        } else if a == "--smoke" {
            fidelity = Fidelity::Smoke;
        } else if a == "--faults" {
            rest.push("q_faults".to_owned());
        } else if a == "--inject-panic" {
            match args.next() {
                Some(label) => runner::set_inject_panic(Some(&label)),
                None => {
                    eprintln!("--inject-panic needs a cell label (e.g. q_faults-io.cost)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--fidelity" {
            match args.next().as_deref() {
                Some("smoke") => fidelity = Fidelity::Smoke,
                Some("standard") => fidelity = Fidelity::Standard,
                Some("full") => fidelity = Fidelity::Full,
                other => {
                    eprintln!("unknown fidelity {other:?} (smoke|standard|full)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--jobs" {
            match args.next().as_deref().map(parse_jobs) {
                Some(Ok(n)) => runner::set_jobs(n),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--jobs needs a value (a worker count or `auto`)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            rest.push(a);
        }
    }
    let selection = match parse_selection(rest) {
        Ok(s) => s,
        Err(bad) => {
            eprintln!(
                "unknown experiment `{bad}`; known: fig2..fig7, q10, table1, optane, \
                 writeback, q_faults, all"
            );
            return ExitCode::FAILURE;
        }
    };

    let mut sink = match OutputSink::with_dir(OUTPUT_DIR) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {OUTPUT_DIR}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = runner::jobs();
    sink.note(&format!(
        "# isol-bench figure regeneration ({fidelity:?} fidelity, {jobs} jobs), CSVs in {OUTPUT_DIR}/"
    ));

    let wants = |name: &str| selection.iter().any(|s| s == name);
    let needs_table1 = wants("table1");
    let t0 = Instant::now();
    let mut timings = Timings::new(&format!("{fidelity:?}").to_lowercase(), jobs);
    let mut profiles = Profiles::new();
    let mut failures = Failures::new();

    // fig2 is standalone; the rest feed Table I.
    let result: std::io::Result<()> = (|| {
        // Samples the engine counters around one experiment and prints
        // the delta (no-op unless --profile).
        macro_rules! profiled {
            ($name:literal, $elapsed:expr, $before:expr) => {
                if profile {
                    let after = host_sim::stats::snapshot();
                    let line = profiles.record(
                        $name,
                        after.runs - $before.runs,
                        after.events_popped - $before.events_popped,
                        $elapsed,
                        after.peak_pending,
                    );
                    sink.note(&line);
                }
            };
        }
        macro_rules! sample_before {
            () => {{
                if profile {
                    host_sim::stats::reset_peak();
                }
                host_sim::stats::snapshot()
            }};
        }
        // Runs one experiment without letting a panic kill the whole
        // regeneration: cell panics are already caught (and the cells
        // dropped) inside the runner; an experiment-level panic is
        // caught here. Either way the failure lands in failures.json
        // and the remaining experiments still run.
        macro_rules! run_guarded {
            ($name:literal, $body:expr) => {{
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body)).map_err(|p| {
                        let msg = payload_message(p);
                        eprintln!("{} panicked: {msg}", $name);
                        failures.record($name, 0, concat!($name, " (experiment)"), &msg);
                    });
                for f in runner::take_failures() {
                    failures.record($name, f.index, &f.label, &f.message);
                }
                match out {
                    Ok(r) => Some(r),
                    Err(()) => None,
                }
            }};
        }
        macro_rules! standalone {
            ($name:literal, $module:ident) => {
                if wants($name) {
                    let started = Instant::now();
                    let before = sample_before!();
                    sink.note(&format!("\n=== {} ===", $name));
                    if let Some(r) = run_guarded!($name, $module::run(fidelity, &mut sink)) {
                        r?;
                    }
                    let elapsed = started.elapsed();
                    timings.record($name, elapsed);
                    sink.note(&format!("({} took {:.1?})", $name, elapsed));
                    profiled!($name, elapsed, before);
                }
            };
        }
        standalone!("fig2", fig2);
        standalone!("optane", optane);
        standalone!("writeback", writeback);
        standalone!("q_faults", q_faults);
        let mut f3 = None;
        let mut f4 = None;
        let mut f5 = None;
        let mut f6 = None;
        let mut f7 = None;
        let mut q = None;
        macro_rules! stage {
            ($name:literal, $slot:ident, $module:ident) => {
                if wants($name) || needs_table1 {
                    let started = Instant::now();
                    let before = sample_before!();
                    sink.note(&format!("\n=== {} ===", $name));
                    if let Some(r) = run_guarded!($name, $module::run(fidelity, &mut sink)) {
                        $slot = Some(r?);
                    }
                    let elapsed = started.elapsed();
                    timings.record($name, elapsed);
                    sink.note(&format!("({} took {:.1?})", $name, elapsed));
                    profiled!($name, elapsed, before);
                }
            };
        }
        stage!("fig3", f3, fig3);
        stage!("fig4", f4, fig4);
        stage!("fig5", f5, fig5);
        stage!("fig6", f6, fig6);
        stage!("fig7", f7, fig7);
        stage!("q10", q, q10);
        if needs_table1 {
            if let (Some(f3), Some(f4), Some(f5), Some(f6), Some(f7), Some(q)) = (
                f3.as_ref(),
                f4.as_ref(),
                f5.as_ref(),
                f6.as_ref(),
                f7.as_ref(),
                q.as_ref(),
            ) {
                let started = Instant::now();
                sink.note("\n=== table1 ===");
                let derived =
                    run_guarded!("table1", table1::derive(f3, f4, f5, f6, f7, q, fidelity));
                if let Some(result) = derived {
                    table1::emit(&result, &mut sink)?;
                    let matches = result
                        .rows
                        .iter()
                        .filter(|r| {
                            table1::paper_verdicts(r.knob).is_some_and(|p| {
                                p == [r.overhead, r.fairness, r.tradeoffs, r.bursts]
                            })
                        })
                        .count();
                    sink.note(&format!(
                        "verdict rows matching the paper's Table I: {matches}/{}",
                        result.rows.len()
                    ));
                }
                timings.record("table1", started.elapsed());
            } else {
                sink.note("\n(table1 skipped: a prerequisite experiment failed)");
            }
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("figure regeneration failed: {e}");
        return ExitCode::FAILURE;
    }
    let failures_path = format!("{OUTPUT_DIR}/failures.json");
    if let Err(e) = failures.write_json(&failures_path) {
        eprintln!("cannot write {failures_path}: {e}");
        return ExitCode::FAILURE;
    }
    if !failures.is_empty() {
        sink.note(&format!(
            "WARNING: {} cell(s) panicked and were dropped; see {failures_path}:",
            failures.len()
        ));
        for f in failures.entries() {
            sink.note(&format!(
                "  - {} cell #{} ({}): {}",
                f.experiment, f.index, f.label, f.message
            ));
        }
    }
    let timings_path = format!("{OUTPUT_DIR}/timings.json");
    if let Err(e) = timings.write_json(&timings_path, t0.elapsed()) {
        eprintln!("cannot write {timings_path}: {e}");
        return ExitCode::FAILURE;
    }
    if profile {
        let profile_path = format!("{OUTPUT_DIR}/profile.json");
        if let Err(e) = profiles.write_json(&profile_path) {
            eprintln!("cannot write {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
        sink.note(&format!("Engine profiles in {profile_path}."));
    }
    sink.note(&format!(
        "\nDone in {:.1?}; {} tables emitted; timings in {timings_path}.",
        t0.elapsed(),
        sink.emitted().len()
    ));
    ExitCode::SUCCESS
}
