//! Performance snapshot and regression gate (`BENCH_pr7.json` +
//! `BENCH_pr9.json`).
//!
//! ```text
//! perfsnap --update   # measure and (over)write both snapshots
//! perfsnap --check    # measure and fail on >10 % regression
//! ```
//!
//! Hand-rolled measurements (Criterion is a dev-dependency of the
//! benches only, so this binary times by hand — minimum of
//! [`SAMPLES`] runs each):
//!
//! * `event_queue_mops` — wheel-backed `EventQueue` churn throughput
//!   (the engine's hot path; mirrors the `event_queue` Criterion bench),
//! * `fleet_shard1_ms` / `fleet_shard4_ms` — the 7-SSD fleet scenario
//!   at `--shards 1` vs `--shards 4` (mirrors the `shard` bench). The
//!   reports must be identical; the ratio is the sharding speedup,
//! * `qos_tick_*_ns` — one `io.cost` period boundary at 8 and 1024
//!   materialized tenants (~10 % active), arena controller vs. the
//!   retained map baseline (mirrors the `qos_scale` bench). The gate
//!   requires the arena ≥ [`QOS_SPEEDUP_FLOOR`]× faster at 1024 and no
//!   slower than the baseline at 8,
//! * `fleet_scale_cell_ms` — one smoke-fidelity `fleet_scale` cell
//!   (256 tenants, no knob) end to end; the snapshot also records the
//!   derived `fleet_scale_cells_per_sec`,
//! * `cells_per_sec` — end-to-end smoke-fidelity cell throughput from a
//!   `figures` run's `timings.json` when one is present (skipped
//!   otherwise, so `--check` works in a fresh checkout).
//!
//! `--check` compares against the committed snapshot and fails when a
//! throughput metric drops (or a latency metric rises) by more than
//! [`TOLERANCE`]. The `shards = 4` speedup gate (≥ 2.5×) only arms when
//! the machine has at least 4 cores — on smaller hosts the snapshot
//! still records the measured ratio, but physics caps it near 1×.
//!
//! # The PR 9 snapshot (`BENCH_pr9.json`)
//!
//! The O(active) engine work is gated by a second snapshot:
//!
//! * `fleet4096_cell_ms` / `fleet4096_legacy_cell_ms` — the 4096-tenant
//!   smoke `fleet_scale` cell (scenario + build + run) under the merged
//!   engine vs the in-binary queue-only engine. The merged engine must
//!   stay at least [`ENGINE_SPEEDUP_FLOOR`]× the legacy engine, and the
//!   cell must not regress past the PR 8 seed's recorded wall-clock
//!   ([`PR8_FLEET4096_CELL_MS`]).
//! * `fleet65536_cell_ms` — the 65536-tenant smoke cell end to end.
//!   Gated two ways: at least [`SCALE_SPEEDUP_FLOOR`]× faster than the
//!   PR 8 seed's recorded wall-clock for the same cell
//!   ([`PR8_FLEET65536_CELL_MS`]; the win comes from the O(n) cgroup
//!   name index and lazy histogram allocation), and absolutely within
//!   [`FLEET64K_BUDGET_MS`] — the standard-fidelity per-cell time
//!   budget.
//! * `engine_events_per_sec` — merged-engine pop throughput on the
//!   4096-tenant cell.
//! * `fig4_cells_ms` / `q10_cells_ms` — summed per-cell seconds for the
//!   fig4 and q10 grids from the most recent `figures` run's
//!   `timings.json` (gated only when both snapshot and current runs
//!   have them).
//!
//! The 4096-tenant cell does *not* carry a 3× gate: ~60 % of its run
//! is device-model sampling and completion statistics that any engine
//! pays per I/O, so Amdahl caps the whole-cell speedup well below the
//! per-event savings (see DESIGN.md §17 for the measured breakdown).
//! The 3× gate lives where the work actually removed 3×+ of wall-clock
//! — the 64k-tenant cell.
//!
//! Like `BENCH_pr7.json`, absolute milliseconds are machine-specific:
//! regenerate with `--update` when moving to different hardware.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use ioqos::IoCostController;
use isol_bench::experiments::{fleet, fleet_scale};
use isol_bench::{Fidelity, Knob};
use isol_bench_harness::mapqos::{self, CostControl, MapIoCost};
use isol_bench_harness::OUTPUT_DIR;
use simcore::{EventQueue, SimDuration, SimTime};

/// Committed snapshot path (repo root).
const SNAPSHOT: &str = "BENCH_pr7.json";
/// Regression tolerance: fail `--check` beyond ±10 %.
const TOLERANCE: f64 = 0.10;
/// Timed samples per metric (minimum reported).
const SAMPLES: usize = 5;
/// Cores needed before the sharding-speedup gate arms.
const SPEEDUP_CORES: usize = 4;
/// Required fleet speedup at 4 shards on a ≥ 4-core machine.
const SPEEDUP_FLOOR: f64 = 2.5;
/// Required arena-vs-map `io.cost` tick speedup at 1024 tenants.
const QOS_SPEEDUP_FLOOR: f64 = 5.0;
/// Ticks per timed qos sample (amortizes timer resolution).
const QOS_TICK_ITERS: u32 = 50_000;
/// Measurement passes `--check` may merge before reporting a
/// regression (noise adds time; the per-metric best across passes is
/// the robust estimate).
const CHECK_ATTEMPTS: usize = 4;

// --- PR 9: O(active) engine gates ---

/// Committed PR 9 snapshot path (repo root).
const SNAPSHOT_PR9: &str = "BENCH_pr9.json";
/// PR 8 seed wall-clock for the 4096-tenant smoke `fleet_scale` cell
/// (scenario + build + run), measured on this host class from the seed
/// checkout (commit cf33866): ~2.8 ms scenario + ~58 ms build + ~224 ms
/// run, best of interleaved samples.
const PR8_FLEET4096_CELL_MS: f64 = 285.0;
/// PR 8 seed wall-clock for the 65536-tenant smoke cell on this host
/// class: ~1.2 s scenario (the O(n²) duplicate-name scan) + ~9.4 s
/// build (eager histogram zeroing) + ~1.4 s run.
const PR8_FLEET65536_CELL_MS: f64 = 12_000.0;
/// Required speedup of the 65536-tenant cell over the PR 8 seed.
const SCALE_SPEEDUP_FLOOR: f64 = 3.0;
/// The merged engine must not run the 4096-tenant cell slower than the
/// in-binary queue-only engine (ratio legacy/merged, noise-tolerant).
const ENGINE_SPEEDUP_FLOOR: f64 = 0.95;
/// Standard-fidelity per-cell time budget the 65536-tenant smoke cell
/// must fit in (the per-cell watchdog deadline a fleet-scale run would
/// arm; see EXPERIMENTS.md).
const FLEET64K_BUDGET_MS: f64 = 30_000.0;
/// Timed samples for the 65536-tenant cell (each costs seconds).
const FLEET64K_SAMPLES: usize = 2;

/// Minimum of `n` timed runs, in seconds. The minimum is the
/// lowest-noise estimator of the true cost on a shared host: background
/// load only ever adds time, so the fastest observation is the closest
/// to the undisturbed one (medians still wobble ±40 % under noisy
/// neighbors, which would flake a ±10 % gate).
fn min_secs(n: usize, mut f: impl FnMut()) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::MAX, f64::min)
}

/// The `event_queue` churn workload: bounded pending set, one re-arm
/// per pop (10k events, QD 256) — events per second.
fn event_queue_mops() -> f64 {
    const EVENTS: u64 = 100_000;
    const PENDING: u64 = 256;
    let run = || {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(PENDING as usize);
        for i in 0..PENDING {
            q.schedule(SimTime::from_nanos(i * 997), i);
        }
        let mut sum = 0u64;
        let mut next = PENDING;
        while next < EVENTS {
            let (t, v) = q.pop().expect("pending set never empties");
            sum = sum.wrapping_add(v);
            q.schedule(t + SimDuration::from_nanos(997 + v % 131), next);
            next += 1;
        }
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum);
    };
    let secs = min_secs(SAMPLES, run);
    EVENTS as f64 / secs / 1e6
}

/// One fleet run at the given shard count, returning (min seconds,
/// a determinism fingerprint of the report).
fn fleet_run(shards: usize) -> (f64, u64) {
    let until = fleet::bench_duration();
    let mut fingerprint = 0u64;
    let secs = min_secs(SAMPLES, || {
        let sim = fleet::fleet_scenario(Knob::None, fleet::FLEET_SSDS).build_host(until);
        let r = sim.run_sharded(until, shards);
        fingerprint = r.apps.iter().fold(0u64, |acc, a| {
            acc.wrapping_mul(0x100_0000_01b3)
                .wrapping_add(a.completed)
                .wrapping_add(a.latency.p99_us.to_bits())
        });
        black_box(&r);
    });
    (secs, fingerprint)
}

/// Min nanoseconds per `io.cost` period boundary with `n` tenants
/// materialized and ~10 % active (the `qos_scale` bench's tick axis).
fn qos_tick_ns(ctl: &mut impl CostControl, n: usize) -> f64 {
    let mut now = mapqos::populate(ctl, n);
    // One warm batch before timing.
    for _ in 0..QOS_TICK_ITERS {
        now += SimDuration::from_millis(5);
        ctl.tick(now);
    }
    let secs = min_secs(SAMPLES, || {
        for _ in 0..QOS_TICK_ITERS {
            now += SimDuration::from_millis(5);
            ctl.tick(black_box(now));
        }
    });
    secs * 1e9 / f64::from(QOS_TICK_ITERS)
}

/// Min milliseconds for one smoke-fidelity `fleet_scale` cell
/// (256 tenants, no knob) end to end.
fn fleet_scale_cell_ms() -> f64 {
    let until = Fidelity::Smoke.fleet_scale_duration();
    let secs = min_secs(SAMPLES, || {
        let (s, _, _) = fleet_scale::fleet_scale_scenario(Knob::None, 256);
        // A fixed shard count so the metric does not depend on how many
        // cores the auto-detected runner config would grab.
        black_box(&s.build_host(until).run_sharded(until, 4));
    });
    secs * 1e3
}

/// One 4096-tenant smoke `fleet_scale` cell (scenario + build + run)
/// under the merged or the queue-only engine: (min ms, events per run).
fn fleet4096_cell(merged: bool) -> (f64, u64) {
    let until = Fidelity::Smoke.fleet_scale_duration();
    let was = host_sim::merge_events();
    host_sim::set_merge_events(merged);
    let before = host_sim::stats::snapshot();
    let secs = min_secs(SAMPLES, || {
        let (s, _, _) = fleet_scale::fleet_scale_scenario(Knob::None, 4096);
        black_box(&s.build_host(until).run(until));
    });
    let after = host_sim::stats::snapshot();
    host_sim::set_merge_events(was);
    let events_per_run = (after.events_popped - before.events_popped) / SAMPLES as u64;
    (secs * 1e3, events_per_run)
}

/// The 65536-tenant smoke cell end to end (scenario + build + run),
/// min milliseconds over [`FLEET64K_SAMPLES`].
fn fleet65536_cell_ms() -> f64 {
    let until = Fidelity::Smoke.fleet_scale_duration();
    let secs = min_secs(FLEET64K_SAMPLES, || {
        let (s, _, _) = fleet_scale::fleet_scale_scenario(Knob::None, 65536);
        black_box(&s.build_host(until).run(until));
    });
    secs * 1e3
}

/// Summed per-cell seconds for one experiment from the latest `figures`
/// run's `timings.json`, in milliseconds (None when absent).
fn experiment_cells_ms(experiment: &str) -> Option<f64> {
    let json = std::fs::read_to_string(format!("{OUTPUT_DIR}/timings.json")).ok()?;
    let needle = format!("{{\"experiment\": \"{experiment}\"");
    let mut secs = 0.0f64;
    let mut count = 0usize;
    for line in json.lines() {
        let line = line.trim_start();
        if line.starts_with(&needle) {
            if let Some(v) = line
                .split("\"seconds\": ")
                .nth(1)
                .and_then(|s| s.split(',').next())
            {
                if let Ok(s) = v.parse::<f64>() {
                    count += 1;
                    secs += s;
                }
            }
        }
    }
    (count > 0).then_some(secs * 1e3)
}

/// Cells per second from the latest `figures` run, if one exists.
fn cells_per_sec() -> Option<f64> {
    let json = std::fs::read_to_string(format!("{OUTPUT_DIR}/timings.json")).ok()?;
    // Count cell objects and sum their seconds (hand-rolled scan over
    // the hand-rolled JSON).
    let mut count = 0usize;
    let mut secs = 0.0f64;
    for line in json.lines() {
        let line = line.trim_start();
        if line.starts_with("{\"experiment\": ") {
            if let Some(v) = line
                .split("\"seconds\": ")
                .nth(1)
                .and_then(|s| s.split(',').next())
            {
                if let Ok(s) = v.parse::<f64>() {
                    count += 1;
                    secs += s;
                }
            }
        }
    }
    (count > 0 && secs > 0.0).then(|| count as f64 / secs)
}

#[derive(Debug, Clone, Copy)]
struct Snapshot {
    host_cores: usize,
    event_queue_mops: f64,
    fleet_shard1_ms: f64,
    fleet_shard4_ms: f64,
    speedup: f64,
    qos_tick_arena_8_ns: f64,
    qos_tick_map_8_ns: f64,
    qos_tick_arena_1024_ns: f64,
    qos_tick_map_1024_ns: f64,
    qos_tick_speedup_1024: f64,
    fleet_scale_cell_ms: f64,
    cells_per_sec: Option<f64>,
}

impl Snapshot {
    /// Per-metric best of two measurement passes: min for wall-clock
    /// metrics, max for throughputs, ratios recomputed from the merged
    /// components. Repeated measurement converges on the undisturbed
    /// cost even when single passes wobble far beyond the gate
    /// tolerance under noisy neighbors.
    fn merge_best(self, other: Self) -> Self {
        let fleet_shard1_ms = self.fleet_shard1_ms.min(other.fleet_shard1_ms);
        let fleet_shard4_ms = self.fleet_shard4_ms.min(other.fleet_shard4_ms);
        let qos_tick_arena_1024_ns = self
            .qos_tick_arena_1024_ns
            .min(other.qos_tick_arena_1024_ns);
        let qos_tick_map_1024_ns = self.qos_tick_map_1024_ns.min(other.qos_tick_map_1024_ns);
        Snapshot {
            host_cores: self.host_cores,
            event_queue_mops: self.event_queue_mops.max(other.event_queue_mops),
            fleet_shard1_ms,
            fleet_shard4_ms,
            speedup: fleet_shard1_ms / fleet_shard4_ms,
            qos_tick_arena_8_ns: self.qos_tick_arena_8_ns.min(other.qos_tick_arena_8_ns),
            qos_tick_map_8_ns: self.qos_tick_map_8_ns.min(other.qos_tick_map_8_ns),
            qos_tick_arena_1024_ns,
            qos_tick_map_1024_ns,
            qos_tick_speedup_1024: qos_tick_map_1024_ns / qos_tick_arena_1024_ns,
            fleet_scale_cell_ms: self.fleet_scale_cell_ms.min(other.fleet_scale_cell_ms),
            cells_per_sec: match (self.cells_per_sec, other.cells_per_sec) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
        }
    }

    fn measure() -> Self {
        let host_cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mops = event_queue_mops();
        let (s1, fp1) = fleet_run(1);
        let (s4, fp4) = fleet_run(4);
        assert_eq!(
            fp1, fp4,
            "sharded fleet report diverged from the sequential report"
        );
        let qos_arena_8 = qos_tick_ns(&mut IoCostController::new(mapqos::bench_config()), 8);
        let qos_map_8 = qos_tick_ns(&mut MapIoCost::new(mapqos::bench_config()), 8);
        let qos_arena_1024 = qos_tick_ns(&mut IoCostController::new(mapqos::bench_config()), 1024);
        let qos_map_1024 = qos_tick_ns(&mut MapIoCost::new(mapqos::bench_config()), 1024);
        Snapshot {
            host_cores,
            event_queue_mops: mops,
            fleet_shard1_ms: s1 * 1e3,
            fleet_shard4_ms: s4 * 1e3,
            speedup: s1 / s4,
            qos_tick_arena_8_ns: qos_arena_8,
            qos_tick_map_8_ns: qos_map_8,
            qos_tick_arena_1024_ns: qos_arena_1024,
            qos_tick_map_1024_ns: qos_map_1024,
            qos_tick_speedup_1024: qos_map_1024 / qos_arena_1024,
            fleet_scale_cell_ms: fleet_scale_cell_ms(),
            cells_per_sec: cells_per_sec(),
        }
    }

    fn to_json(self) -> String {
        let cells = self
            .cells_per_sec
            .map_or("null".to_owned(), |v| format!("{v:.2}"));
        format!(
            "{{\n  \"host_cores\": {},\n  \"event_queue_mops\": {:.2},\n  \
             \"fleet_shard1_ms\": {:.2},\n  \"fleet_shard4_ms\": {:.2},\n  \
             \"fleet_speedup_4shards\": {:.3},\n  \
             \"qos_tick_arena_8_ns\": {:.1},\n  \"qos_tick_map_8_ns\": {:.1},\n  \
             \"qos_tick_arena_1024_ns\": {:.1},\n  \"qos_tick_map_1024_ns\": {:.1},\n  \
             \"qos_tick_speedup_1024\": {:.2},\n  \
             \"fleet_scale_cell_ms\": {:.2},\n  \"fleet_scale_cells_per_sec\": {:.2},\n  \
             \"cells_per_sec\": {cells}\n}}\n",
            self.host_cores,
            self.event_queue_mops,
            self.fleet_shard1_ms,
            self.fleet_shard4_ms,
            self.speedup,
            self.qos_tick_arena_8_ns,
            self.qos_tick_map_8_ns,
            self.qos_tick_arena_1024_ns,
            self.qos_tick_map_1024_ns,
            self.qos_tick_speedup_1024,
            self.fleet_scale_cell_ms,
            1e3 / self.fleet_scale_cell_ms,
        )
    }
}

/// Pulls `"key": <number>` out of the snapshot JSON.
fn field(json: &str, key: &str) -> Option<f64> {
    json.split(&format!("\"{key}\": "))
        .nth(1)?
        .split([',', '\n', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn check(current: Snapshot, baseline: &str) -> Result<(), String> {
    let mut failures = Vec::new();
    // Throughput metrics: fail when current drops >10 % below baseline.
    if let Some(base) = field(baseline, "event_queue_mops") {
        if current.event_queue_mops < base * (1.0 - TOLERANCE) {
            failures.push(format!(
                "event_queue_mops regressed: {:.2} vs baseline {base:.2}",
                current.event_queue_mops
            ));
        }
    }
    // Latency metrics: fail when current rises >10 % above baseline.
    for (key, cur) in [
        ("fleet_shard1_ms", current.fleet_shard1_ms),
        ("fleet_shard4_ms", current.fleet_shard4_ms),
        ("qos_tick_arena_8_ns", current.qos_tick_arena_8_ns),
        ("qos_tick_arena_1024_ns", current.qos_tick_arena_1024_ns),
        ("fleet_scale_cell_ms", current.fleet_scale_cell_ms),
    ] {
        if let Some(base) = field(baseline, key) {
            if cur > base * (1.0 + TOLERANCE) {
                failures.push(format!(
                    "{key} regressed: {cur:.2} ms vs baseline {base:.2} ms"
                ));
            }
        }
    }
    if let (Some(base), Some(cur)) = (field(baseline, "cells_per_sec"), current.cells_per_sec) {
        if cur < base * (1.0 - TOLERANCE) {
            failures.push(format!(
                "cells_per_sec regressed: {cur:.2} vs baseline {base:.2}"
            ));
        }
    }
    // The acceptance gate: ≥ 2.5× at 4 shards, only meaningful with the
    // cores to run them.
    if current.host_cores >= SPEEDUP_CORES && current.speedup < SPEEDUP_FLOOR {
        failures.push(format!(
            "fleet speedup at 4 shards is {:.2}x on a {}-core host (floor {SPEEDUP_FLOOR}x)",
            current.speedup, current.host_cores
        ));
    }
    // The fleet-scale fast-path gates: the arena controller's period
    // work must scale with active tenants, not total tenants (≥ 5× over
    // the map baseline at 1024 with ~10 % active), without regressing
    // the small-fleet case the paper actually measures.
    if current.qos_tick_speedup_1024 < QOS_SPEEDUP_FLOOR {
        failures.push(format!(
            "io.cost tick at 1024 tenants: arena is only {:.2}x faster than the map \
             baseline ({:.0} ns vs {:.0} ns; floor {QOS_SPEEDUP_FLOOR}x)",
            current.qos_tick_speedup_1024,
            current.qos_tick_arena_1024_ns,
            current.qos_tick_map_1024_ns,
        ));
    }
    if current.qos_tick_arena_8_ns > current.qos_tick_map_8_ns * (1.0 + TOLERANCE) {
        failures.push(format!(
            "io.cost tick at 8 tenants regressed vs the map baseline: {:.1} ns vs {:.1} ns",
            current.qos_tick_arena_8_ns, current.qos_tick_map_8_ns
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// The PR 9 snapshot: O(active) engine + fleet-scale cell gates.
#[derive(Debug, Clone, Copy)]
struct Pr9Snapshot {
    fleet4096_cell_ms: f64,
    fleet4096_legacy_cell_ms: f64,
    engine_speedup_4096: f64,
    speedup_vs_pr8_4096: f64,
    engine_events_per_sec: f64,
    fleet65536_cell_ms: f64,
    speedup_vs_pr8_65536: f64,
    fig4_cells_ms: Option<f64>,
    q10_cells_ms: Option<f64>,
}

impl Pr9Snapshot {
    fn measure() -> Self {
        let (merged_ms, events) = fleet4096_cell(true);
        let (legacy_ms, _) = fleet4096_cell(false);
        let scale_ms = fleet65536_cell_ms();
        Pr9Snapshot {
            fleet4096_cell_ms: merged_ms,
            fleet4096_legacy_cell_ms: legacy_ms,
            engine_speedup_4096: legacy_ms / merged_ms,
            speedup_vs_pr8_4096: PR8_FLEET4096_CELL_MS / merged_ms,
            engine_events_per_sec: events as f64 / (merged_ms / 1e3),
            fleet65536_cell_ms: scale_ms,
            speedup_vs_pr8_65536: PR8_FLEET65536_CELL_MS / scale_ms,
            fig4_cells_ms: experiment_cells_ms("fig4"),
            q10_cells_ms: experiment_cells_ms("q10"),
        }
    }

    /// Per-metric best of two passes (min wall-clock, max throughput,
    /// ratios recomputed) — same estimator as [`Snapshot::merge_best`].
    fn merge_best(self, other: Self) -> Self {
        let fleet4096_cell_ms = self.fleet4096_cell_ms.min(other.fleet4096_cell_ms);
        let fleet4096_legacy_cell_ms = self
            .fleet4096_legacy_cell_ms
            .min(other.fleet4096_legacy_cell_ms);
        let fleet65536_cell_ms = self.fleet65536_cell_ms.min(other.fleet65536_cell_ms);
        let min_opt = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Pr9Snapshot {
            fleet4096_cell_ms,
            fleet4096_legacy_cell_ms,
            engine_speedup_4096: fleet4096_legacy_cell_ms / fleet4096_cell_ms,
            speedup_vs_pr8_4096: PR8_FLEET4096_CELL_MS / fleet4096_cell_ms,
            engine_events_per_sec: self.engine_events_per_sec.max(other.engine_events_per_sec),
            fleet65536_cell_ms,
            speedup_vs_pr8_65536: PR8_FLEET65536_CELL_MS / fleet65536_cell_ms,
            fig4_cells_ms: min_opt(self.fig4_cells_ms, other.fig4_cells_ms),
            q10_cells_ms: min_opt(self.q10_cells_ms, other.q10_cells_ms),
        }
    }

    fn to_json(self) -> String {
        let opt = |v: Option<f64>| v.map_or("null".to_owned(), |v| format!("{v:.2}"));
        format!(
            "{{\n  \"fleet4096_cell_ms\": {:.2},\n  \
             \"fleet4096_legacy_cell_ms\": {:.2},\n  \
             \"engine_speedup_4096\": {:.3},\n  \
             \"pr8_fleet4096_cell_ms\": {PR8_FLEET4096_CELL_MS:.2},\n  \
             \"speedup_vs_pr8_4096\": {:.3},\n  \
             \"engine_events_per_sec\": {:.0},\n  \
             \"fleet65536_cell_ms\": {:.2},\n  \
             \"pr8_fleet65536_cell_ms\": {PR8_FLEET65536_CELL_MS:.2},\n  \
             \"speedup_vs_pr8_65536\": {:.3},\n  \
             \"fleet65536_budget_ms\": {FLEET64K_BUDGET_MS:.0},\n  \
             \"fig4_cells_ms\": {},\n  \"q10_cells_ms\": {}\n}}\n",
            self.fleet4096_cell_ms,
            self.fleet4096_legacy_cell_ms,
            self.engine_speedup_4096,
            self.speedup_vs_pr8_4096,
            self.engine_events_per_sec,
            self.fleet65536_cell_ms,
            self.speedup_vs_pr8_65536,
            opt(self.fig4_cells_ms),
            opt(self.q10_cells_ms),
        )
    }
}

fn check_pr9(current: Pr9Snapshot, baseline: &str) -> Result<(), String> {
    let mut failures = Vec::new();
    // Regressions against the committed snapshot (latency metrics).
    for (key, cur) in [
        ("fleet4096_cell_ms", Some(current.fleet4096_cell_ms)),
        ("fleet65536_cell_ms", Some(current.fleet65536_cell_ms)),
        ("fig4_cells_ms", current.fig4_cells_ms),
        ("q10_cells_ms", current.q10_cells_ms),
    ] {
        if let (Some(base), Some(cur)) = (field(baseline, key), cur) {
            if cur > base * (1.0 + TOLERANCE) {
                failures.push(format!(
                    "{key} regressed: {cur:.2} ms vs baseline {base:.2} ms"
                ));
            }
        }
    }
    // The merged engine must not lose to the in-binary legacy engine.
    if current.engine_speedup_4096 < ENGINE_SPEEDUP_FLOOR {
        failures.push(format!(
            "merged engine is slower than the queue-only engine at 4096 tenants: \
             {:.2} ms vs {:.2} ms (floor {ENGINE_SPEEDUP_FLOOR}x)",
            current.fleet4096_cell_ms, current.fleet4096_legacy_cell_ms
        ));
    }
    // The 4096-tenant cell must not be slower than the PR 8 seed.
    if current.fleet4096_cell_ms > PR8_FLEET4096_CELL_MS * (1.0 + TOLERANCE) {
        failures.push(format!(
            "fleet4096 cell regressed past the PR 8 seed: {:.2} ms vs {PR8_FLEET4096_CELL_MS} ms",
            current.fleet4096_cell_ms
        ));
    }
    // The scale gates: ≥3× over the PR 8 seed at 65536 tenants, and
    // absolutely within the standard-fidelity cell budget.
    if current.speedup_vs_pr8_65536 < SCALE_SPEEDUP_FLOOR {
        failures.push(format!(
            "fleet65536 cell is only {:.2}x faster than the PR 8 seed \
             ({:.0} ms vs {PR8_FLEET65536_CELL_MS:.0} ms; floor {SCALE_SPEEDUP_FLOOR}x)",
            current.speedup_vs_pr8_65536, current.fleet65536_cell_ms
        ));
    }
    if current.fleet65536_cell_ms > FLEET64K_BUDGET_MS {
        failures.push(format!(
            "fleet65536 cell blew the standard-fidelity budget: {:.0} ms > {FLEET64K_BUDGET_MS:.0} ms",
            current.fleet65536_cell_ms
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1);
    let current = Snapshot::measure();
    println!(
        "perfsnap: {} core(s), event_queue {:.2} Mops/s, fleet {:.2} ms @1 shard / {:.2} ms @4 shards ({:.2}x), cells/s {}",
        current.host_cores,
        current.event_queue_mops,
        current.fleet_shard1_ms,
        current.fleet_shard4_ms,
        current.speedup,
        current
            .cells_per_sec
            .map_or("n/a".to_owned(), |v| format!("{v:.2}")),
    );
    println!(
        "perfsnap: io.cost tick arena/map {:.1}/{:.1} ns @8, {:.1}/{:.1} ns @1024 ({:.2}x), fleet_scale cell {:.1} ms ({:.2} cells/s)",
        current.qos_tick_arena_8_ns,
        current.qos_tick_map_8_ns,
        current.qos_tick_arena_1024_ns,
        current.qos_tick_map_1024_ns,
        current.qos_tick_speedup_1024,
        current.fleet_scale_cell_ms,
        1e3 / current.fleet_scale_cell_ms,
    );
    let current9 = Pr9Snapshot::measure();
    println!(
        "perfsnap: fleet4096 cell {:.1} ms merged / {:.1} ms legacy ({:.2}x, {:.2} Mev/s), fleet65536 cell {:.0} ms ({:.2}x vs PR 8 seed)",
        current9.fleet4096_cell_ms,
        current9.fleet4096_legacy_cell_ms,
        current9.engine_speedup_4096,
        current9.engine_events_per_sec / 1e6,
        current9.fleet65536_cell_ms,
        current9.speedup_vs_pr8_65536,
    );
    match mode.as_deref() {
        Some("--update") => {
            // A second pass merged in keeps a transient slow window out
            // of the committed baseline.
            let best = current.merge_best(Snapshot::measure());
            if let Err(e) = std::fs::write(SNAPSHOT, best.to_json()) {
                eprintln!("cannot write {SNAPSHOT}: {e}");
                return ExitCode::FAILURE;
            }
            println!("perfsnap: wrote {SNAPSHOT}");
            let best9 = current9.merge_best(Pr9Snapshot::measure());
            if let Err(e) = std::fs::write(SNAPSHOT_PR9, best9.to_json()) {
                eprintln!("cannot write {SNAPSHOT_PR9}: {e}");
                return ExitCode::FAILURE;
            }
            println!("perfsnap: wrote {SNAPSHOT_PR9}");
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let baseline = match std::fs::read_to_string(SNAPSHOT) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {SNAPSHOT}: {e} (run `perfsnap --update` first)");
                    return ExitCode::FAILURE;
                }
            };
            let baseline9 = match std::fs::read_to_string(SNAPSHOT_PR9) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {SNAPSHOT_PR9}: {e} (run `perfsnap --update` first)");
                    return ExitCode::FAILURE;
                }
            };
            // Noise only ever slows a pass down, so an apparent
            // regression earns re-measurement: merge per-metric bests
            // until the check passes or the attempts run out. Genuine
            // regressions stay slow on every pass.
            let mut best = current;
            let mut best9 = current9;
            let mut verdict = check(best, &baseline);
            let mut verdict9 = check_pr9(best9, &baseline9);
            for attempt in 1..CHECK_ATTEMPTS {
                if verdict.is_ok() && verdict9.is_ok() {
                    break;
                }
                println!("perfsnap: noisy pass, re-measuring ({attempt}/{CHECK_ATTEMPTS})");
                if verdict.is_err() {
                    best = best.merge_best(Snapshot::measure());
                    verdict = check(best, &baseline);
                }
                if verdict9.is_err() {
                    best9 = best9.merge_best(Pr9Snapshot::measure());
                    verdict9 = check_pr9(best9, &baseline9);
                }
            }
            match (verdict, verdict9) {
                (Ok(()), Ok(())) => {
                    println!(
                        "perfsnap: within {:.0} % of {SNAPSHOT} and {SNAPSHOT_PR9}",
                        TOLERANCE * 100.0
                    );
                    ExitCode::SUCCESS
                }
                (v, v9) => {
                    let msg = [v.err(), v9.err()]
                        .into_iter()
                        .flatten()
                        .collect::<Vec<_>>()
                        .join("\n");
                    eprintln!("perfsnap: REGRESSION\n{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("usage: perfsnap --update | --check (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
