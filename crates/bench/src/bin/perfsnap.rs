//! Performance snapshot and regression gate (`BENCH_pr6.json`).
//!
//! ```text
//! perfsnap --update   # measure and (over)write BENCH_pr6.json
//! perfsnap --check    # measure and fail on >10 % regression
//! ```
//!
//! Three hand-rolled measurements (Criterion is a dev-dependency of the
//! benches only, so this binary times by hand — median of
//! [`SAMPLES`] runs each):
//!
//! * `event_queue_mops` — wheel-backed `EventQueue` churn throughput
//!   (the engine's hot path; mirrors the `event_queue` Criterion bench),
//! * `fleet_shard1_ms` / `fleet_shard4_ms` — the 7-SSD fleet scenario
//!   at `--shards 1` vs `--shards 4` (mirrors the `shard` bench). The
//!   reports must be identical; the ratio is the sharding speedup,
//! * `cells_per_sec` — end-to-end smoke-fidelity cell throughput from a
//!   `figures` run's `timings.json` when one is present (skipped
//!   otherwise, so `--check` works in a fresh checkout).
//!
//! `--check` compares against the committed snapshot and fails when a
//! throughput metric drops (or a latency metric rises) by more than
//! [`TOLERANCE`]. The `shards = 4` speedup gate (≥ 2.5×) only arms when
//! the machine has at least 4 cores — on smaller hosts the snapshot
//! still records the measured ratio, but physics caps it near 1×.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use isol_bench::experiments::fleet;
use isol_bench::Knob;
use isol_bench_harness::OUTPUT_DIR;
use simcore::{EventQueue, SimDuration, SimTime};

/// Committed snapshot path (repo root).
const SNAPSHOT: &str = "BENCH_pr6.json";
/// Regression tolerance: fail `--check` beyond ±10 %.
const TOLERANCE: f64 = 0.10;
/// Timed samples per metric (median reported).
const SAMPLES: usize = 5;
/// Cores needed before the sharding-speedup gate arms.
const SPEEDUP_CORES: usize = 4;
/// Required fleet speedup at 4 shards on a ≥ 4-core machine.
const SPEEDUP_FLOOR: f64 = 2.5;

/// Median of `n` timed runs, in seconds.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The `event_queue` churn workload: bounded pending set, one re-arm
/// per pop (10k events, QD 256) — events per second.
fn event_queue_mops() -> f64 {
    const EVENTS: u64 = 100_000;
    const PENDING: u64 = 256;
    let run = || {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(PENDING as usize);
        for i in 0..PENDING {
            q.schedule(SimTime::from_nanos(i * 997), i);
        }
        let mut sum = 0u64;
        let mut next = PENDING;
        while next < EVENTS {
            let (t, v) = q.pop().expect("pending set never empties");
            sum = sum.wrapping_add(v);
            q.schedule(t + SimDuration::from_nanos(997 + v % 131), next);
            next += 1;
        }
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum);
    };
    let secs = median_secs(SAMPLES, run);
    EVENTS as f64 / secs / 1e6
}

/// One fleet run at the given shard count, returning (median seconds,
/// a determinism fingerprint of the report).
fn fleet_run(shards: usize) -> (f64, u64) {
    let until = fleet::bench_duration();
    let mut fingerprint = 0u64;
    let secs = median_secs(SAMPLES, || {
        let sim = fleet::fleet_scenario(Knob::None, fleet::FLEET_SSDS).build_host(until);
        let r = sim.run_sharded(until, shards);
        fingerprint = r.apps.iter().fold(0u64, |acc, a| {
            acc.wrapping_mul(0x100_0000_01b3)
                .wrapping_add(a.completed)
                .wrapping_add(a.latency.p99_us.to_bits())
        });
        black_box(&r);
    });
    (secs, fingerprint)
}

/// Cells per second from the latest `figures` run, if one exists.
fn cells_per_sec() -> Option<f64> {
    let json = std::fs::read_to_string(format!("{OUTPUT_DIR}/timings.json")).ok()?;
    // Count cell objects and sum their seconds (hand-rolled scan over
    // the hand-rolled JSON).
    let mut count = 0usize;
    let mut secs = 0.0f64;
    for line in json.lines() {
        let line = line.trim_start();
        if line.starts_with("{\"experiment\": ") {
            if let Some(v) = line
                .split("\"seconds\": ")
                .nth(1)
                .and_then(|s| s.split(',').next())
            {
                if let Ok(s) = v.parse::<f64>() {
                    count += 1;
                    secs += s;
                }
            }
        }
    }
    (count > 0 && secs > 0.0).then(|| count as f64 / secs)
}

#[derive(Debug, Clone, Copy)]
struct Snapshot {
    host_cores: usize,
    event_queue_mops: f64,
    fleet_shard1_ms: f64,
    fleet_shard4_ms: f64,
    speedup: f64,
    cells_per_sec: Option<f64>,
}

impl Snapshot {
    fn measure() -> Self {
        let host_cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mops = event_queue_mops();
        let (s1, fp1) = fleet_run(1);
        let (s4, fp4) = fleet_run(4);
        assert_eq!(
            fp1, fp4,
            "sharded fleet report diverged from the sequential report"
        );
        Snapshot {
            host_cores,
            event_queue_mops: mops,
            fleet_shard1_ms: s1 * 1e3,
            fleet_shard4_ms: s4 * 1e3,
            speedup: s1 / s4,
            cells_per_sec: cells_per_sec(),
        }
    }

    fn to_json(self) -> String {
        let cells = self
            .cells_per_sec
            .map_or("null".to_owned(), |v| format!("{v:.2}"));
        format!(
            "{{\n  \"host_cores\": {},\n  \"event_queue_mops\": {:.2},\n  \
             \"fleet_shard1_ms\": {:.2},\n  \"fleet_shard4_ms\": {:.2},\n  \
             \"fleet_speedup_4shards\": {:.3},\n  \"cells_per_sec\": {cells}\n}}\n",
            self.host_cores,
            self.event_queue_mops,
            self.fleet_shard1_ms,
            self.fleet_shard4_ms,
            self.speedup,
        )
    }
}

/// Pulls `"key": <number>` out of the snapshot JSON.
fn field(json: &str, key: &str) -> Option<f64> {
    json.split(&format!("\"{key}\": "))
        .nth(1)?
        .split([',', '\n', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn check(current: Snapshot, baseline: &str) -> Result<(), String> {
    let mut failures = Vec::new();
    // Throughput metrics: fail when current drops >10 % below baseline.
    if let Some(base) = field(baseline, "event_queue_mops") {
        if current.event_queue_mops < base * (1.0 - TOLERANCE) {
            failures.push(format!(
                "event_queue_mops regressed: {:.2} vs baseline {base:.2}",
                current.event_queue_mops
            ));
        }
    }
    // Latency metrics: fail when current rises >10 % above baseline.
    for (key, cur) in [
        ("fleet_shard1_ms", current.fleet_shard1_ms),
        ("fleet_shard4_ms", current.fleet_shard4_ms),
    ] {
        if let Some(base) = field(baseline, key) {
            if cur > base * (1.0 + TOLERANCE) {
                failures.push(format!(
                    "{key} regressed: {cur:.2} ms vs baseline {base:.2} ms"
                ));
            }
        }
    }
    if let (Some(base), Some(cur)) = (field(baseline, "cells_per_sec"), current.cells_per_sec) {
        if cur < base * (1.0 - TOLERANCE) {
            failures.push(format!(
                "cells_per_sec regressed: {cur:.2} vs baseline {base:.2}"
            ));
        }
    }
    // The acceptance gate: ≥ 2.5× at 4 shards, only meaningful with the
    // cores to run them.
    if current.host_cores >= SPEEDUP_CORES && current.speedup < SPEEDUP_FLOOR {
        failures.push(format!(
            "fleet speedup at 4 shards is {:.2}x on a {}-core host (floor {SPEEDUP_FLOOR}x)",
            current.speedup, current.host_cores
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1);
    let current = Snapshot::measure();
    println!(
        "perfsnap: {} core(s), event_queue {:.2} Mops/s, fleet {:.2} ms @1 shard / {:.2} ms @4 shards ({:.2}x), cells/s {}",
        current.host_cores,
        current.event_queue_mops,
        current.fleet_shard1_ms,
        current.fleet_shard4_ms,
        current.speedup,
        current
            .cells_per_sec
            .map_or("n/a".to_owned(), |v| format!("{v:.2}")),
    );
    match mode.as_deref() {
        Some("--update") => {
            if let Err(e) = std::fs::write(SNAPSHOT, current.to_json()) {
                eprintln!("cannot write {SNAPSHOT}: {e}");
                return ExitCode::FAILURE;
            }
            println!("perfsnap: wrote {SNAPSHOT}");
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let baseline = match std::fs::read_to_string(SNAPSHOT) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {SNAPSHOT}: {e} (run `perfsnap --update` first)");
                    return ExitCode::FAILURE;
                }
            };
            match check(current, &baseline) {
                Ok(()) => {
                    println!("perfsnap: within {:.0} % of {SNAPSHOT}", TOLERANCE * 100.0);
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("perfsnap: REGRESSION\n{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("usage: perfsnap --update | --check (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
