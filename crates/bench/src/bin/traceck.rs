//! Checks request-lifecycle traces against the simulator's invariants.
//!
//! ```text
//! traceck [PATH ...]
//! ```
//!
//! Each `PATH` is a `*.trace.jsonl` file (as written by `figures
//! --trace`) or a directory to scan for them; with no arguments the
//! default trace directory (`target/isol-bench/traces/`) is scanned.
//! Every trace is parsed and run through the full invariant suite
//! (`isol_bench::traceck`): span well-formedness, FIFO tie-break,
//! `io.max` budget replay, iocost vtime monotonicity, and work
//! conservation. Partial traces (from panicked cells) are checked up to
//! where they stop.
//!
//! Exit status: 0 when every trace parses and passes, 1 on any
//! violation, unreadable file, or empty scan.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use isol_bench::traceck;
use simcore::trace::Trace;

/// Collects `*.trace.jsonl` files under `path` (one level; the trace
/// directory is flat).
fn collect(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".trace.jsonl"))
            })
            .collect();
        entries.sort();
        out.extend(entries);
    } else {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from(isol_bench::tracing::DEFAULT_DIR)]
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    let mut files = Vec::new();
    for root in &roots {
        if let Err(e) = collect(root, &mut files) {
            eprintln!("traceck: cannot read {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    }
    if files.is_empty() {
        eprintln!(
            "traceck: no *.trace.jsonl files found under {}",
            roots
                .iter()
                .map(|r| r.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }

    let mut bad = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("traceck: cannot read {}: {e}", file.display());
                bad += 1;
                continue;
            }
        };
        let trace = match Trace::from_jsonl(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("traceck: {}: malformed trace: {e}", file.display());
                bad += 1;
                continue;
            }
        };
        let result = traceck::check(&trace);
        let quality = match (result.partial, result.lossless) {
            (false, true) => "complete, lossless",
            (false, false) => "complete, lossy",
            (true, true) => "partial, lossless",
            (true, false) => "partial, lossy",
        };
        if result.is_ok() {
            println!(
                "traceck: {}: OK — {} events ({quality}; checks: {})",
                file.display(),
                trace.events.len(),
                result.checks.join(", ")
            );
        } else {
            bad += 1;
            eprintln!(
                "traceck: {}: {} violation(s) in {} events ({quality}):",
                file.display(),
                result.violations.len(),
                trace.events.len()
            );
            for v in &result.violations {
                eprintln!("  {v}");
            }
        }
    }
    if bad > 0 {
        eprintln!("traceck: {bad} of {} trace(s) failed", files.len());
        return ExitCode::FAILURE;
    }
    println!("traceck: all {} trace(s) pass", files.len());
    ExitCode::SUCCESS
}
