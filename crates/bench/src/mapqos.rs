//! Map-based `io.cost` baseline for the `qos_scale` bench.
//!
//! [`MapIoCost`] is the pre-arena controller retained verbatim as a
//! benchmark baseline: per-group state in `HashMap`s, a full walk over
//! every materialized group on each hweight computation and each
//! periodic adjustment, and a collect-and-sort pass per drain. The
//! production [`ioqos::IoCostController`] replaced all of that with
//! dense arenas, active-set slot bitmaps, and a memoized hweight; this
//! module exists so `cargo bench --bench qos_scale` and the `perfsnap`
//! regression gate can measure the improvement against the real old
//! cost profile rather than a synthetic strawman.
//!
//! The semantics match the arena controller (same pricing model, same
//! donation math, same vrate loop); only the data-structure walks
//! differ. Do not use it outside benchmarks.

use std::collections::{HashMap, VecDeque};

use blkio::{AccessPattern, AppId, DeviceId, GroupId, IoOp, IoRequest, ReqId};
use ioqos::{IoCostConfig, IoCostController, QosController, SubmitOutcome};
use simcore::{SimDuration, SimTime};

/// How long a group stays "active" for hweight purposes after its last
/// submission (mirrors the arena controller's window).
const ACTIVE_WINDOW: SimDuration = SimDuration::from_millis(100);

#[derive(Debug)]
struct GroupCost {
    vtime: f64,
    inflight: u32,
    held: VecDeque<(IoRequest, f64)>,
    active_until: SimTime,
    spent_in_period: f64,
    usage: f64,
}

impl Default for GroupCost {
    fn default() -> Self {
        GroupCost {
            vtime: 0.0,
            inflight: 0,
            held: VecDeque::new(),
            active_until: SimTime::ZERO,
            spent_in_period: 0.0,
            usage: 1.0,
        }
    }
}

/// The retained map-based `io.cost` controller (benchmark baseline).
#[derive(Debug)]
pub struct MapIoCost {
    config: IoCostConfig,
    weights: HashMap<GroupId, u32>,
    groups: HashMap<GroupId, GroupCost>,
    held_total: usize,
    vrate: f64,
    vbase: f64,
    tbase: SimTime,
    next_tick: SimTime,
    window_rlat_ns: Vec<u64>,
    window_wlat_ns: Vec<u64>,
}

impl MapIoCost {
    /// Creates a baseline controller; `vrate` starts at the QoS maximum.
    #[must_use]
    pub fn new(config: IoCostConfig) -> Self {
        let vrate = (config.qos.max_pct / 100.0).max(0.01);
        MapIoCost {
            next_tick: SimTime::ZERO + config.period,
            config,
            weights: HashMap::new(),
            groups: HashMap::new(),
            held_total: 0,
            vrate,
            vbase: 0.0,
            tbase: SimTime::ZERO,
            window_rlat_ns: Vec::new(),
            window_wlat_ns: Vec::new(),
        }
    }

    /// Sets a group's absolute weight (`io.weight`, 1..=10000).
    pub fn set_weight(&mut self, group: GroupId, weight: u32) {
        self.weights.insert(group, weight.clamp(1, 10_000));
    }

    fn weight(&self, group: GroupId) -> u32 {
        self.weights.get(&group).copied().unwrap_or(100)
    }

    fn vnow(&self, now: SimTime) -> f64 {
        self.vbase + now.saturating_since(self.tbase).as_nanos() as f64 * self.vrate
    }

    fn margin_v(&self) -> f64 {
        self.config.period.as_nanos() as f64 * self.config.margin_frac
    }

    fn abs_cost(&self, op: IoOp, pattern: AccessPattern, len: u32) -> f64 {
        let m = &self.config.model;
        let (bps, iops) = match (op, pattern) {
            (IoOp::Read, AccessPattern::Sequential) => (m.rbps, m.rseqiops),
            (IoOp::Read, AccessPattern::Random) => (m.rbps, m.rrandiops),
            (IoOp::Write, AccessPattern::Sequential) => (m.wbps, m.wseqiops),
            (IoOp::Write, AccessPattern::Random) => (m.wbps, m.wrandiops),
        };
        let page_coef = 4096.0 * 1e9 / bps as f64;
        let io_coef = (1e9 / iops as f64 - page_coef).max(0.0);
        let pages = (f64::from(len) / 4096.0).ceil().max(1.0);
        io_coef + pages * page_coef
    }

    /// The old full-walk hweight: every call iterates every materialized
    /// group and allocates a fresh row vector — the O(total-groups)
    /// hot-path cost the arena controller's memo eliminated.
    fn hweight(&self, group: GroupId, now: SimTime) -> f64 {
        const USAGE_FLOOR: f64 = 0.02;
        const WANTS_MORE: f64 = 0.9;
        let mut rows: Vec<(GroupId, f64, f64, bool)> = Vec::new();
        let mut seen = false;
        for (&id, g) in &self.groups {
            if id == group || g.active_until >= now || !g.held.is_empty() || g.inflight > 0 {
                let wants = id == group || !g.held.is_empty() || g.usage >= WANTS_MORE;
                rows.push((id, f64::from(self.weight(id)), g.usage, wants));
                seen |= id == group;
            }
        }
        if !seen {
            rows.push((group, f64::from(self.weight(group)), 1.0, true));
        }
        let total_w: f64 = rows.iter().map(|r| r.1).sum();
        let mut inuse: f64 = 0.0;
        let mut mine = 0.0;
        let mut wants_w = 0.0;
        for &(id, w, usage, wants) in &rows {
            let nominal = w / total_w;
            let used = nominal * usage.clamp(USAGE_FLOOR, 1.0);
            inuse += used;
            if wants {
                wants_w += w;
            }
            if id == group {
                mine = used;
            }
        }
        let surplus = (1.0 - inuse).max(0.0);
        if wants_w > 0.0 {
            mine += surplus * f64::from(self.weight(group)) / wants_w;
        }
        mine.clamp(1e-6, 1.0)
    }

    /// The old periodic adjustment: walks every materialized group, even
    /// ones idle for minutes.
    fn adjust_vrate(&mut self, now: SimTime) {
        let qos = self.config.qos;
        let min = qos.min_pct / 100.0;
        let max = qos.max_pct / 100.0;
        let mut missed = false;
        let mut measured = false;
        let mut check = |window: &mut Vec<u64>, pct: f64, target_us: u64| {
            if pct <= 0.0 || target_us == 0 || window.is_empty() {
                window.clear();
                return;
            }
            measured = true;
            window.sort_unstable();
            let idx =
                ((window.len() as f64 * pct / 100.0).ceil() as usize).clamp(1, window.len()) - 1;
            if window[idx] / 1_000 > target_us {
                missed = true;
            }
            window.clear();
        };
        if qos.enable {
            check(&mut self.window_rlat_ns, qos.rpct, qos.rlat_us);
            check(&mut self.window_wlat_ns, qos.wpct, qos.wlat_us);
        } else {
            self.window_rlat_ns.clear();
            self.window_wlat_ns.clear();
        }
        let entitlement = self.config.period.as_nanos() as f64 * self.vrate;
        for g in self.groups.values_mut() {
            if g.active_until >= now || !g.held.is_empty() || g.inflight > 0 {
                let sample = (g.spent_in_period / entitlement).clamp(0.0, 1.0);
                g.usage = 0.5 * g.usage + 0.5 * sample;
            }
            g.spent_in_period = 0.0;
        }
        self.vbase = self.vnow(now);
        self.tbase = now;
        if qos.enable && measured {
            if missed {
                self.vrate = (self.vrate * 0.85).max(min);
            } else {
                self.vrate = (self.vrate * 1.05).min(max);
            }
        } else {
            self.vrate = self.vrate.clamp(min, max);
        }
    }
}

impl QosController for MapIoCost {
    fn on_submit(&mut self, req: IoRequest, now: SimTime) -> SubmitOutcome {
        let abs = self.abs_cost(req.op, req.pattern, req.len);
        let charge = abs / self.hweight(req.group, now);
        let vnow = self.vnow(now);
        let margin = self.margin_v();
        let g = self.groups.entry(req.group).or_default();
        let was_idle = g.inflight == 0 && g.held.is_empty();
        g.active_until = now + ACTIVE_WINDOW;
        if was_idle {
            g.vtime = g.vtime.max(vnow - margin);
        }
        if g.held.is_empty() && g.vtime + charge <= vnow + margin {
            g.vtime += charge;
            g.spent_in_period += charge;
            g.inflight += 1;
            SubmitOutcome::Pass(req)
        } else {
            g.held.push_back((req, abs));
            self.held_total += 1;
            SubmitOutcome::Held
        }
    }

    fn on_device_complete(&mut self, req: &IoRequest, now: SimTime) {
        let lat = now.saturating_since(req.submitted_at).as_nanos();
        if req.op.is_read() {
            self.window_rlat_ns.push(lat);
        } else {
            self.window_wlat_ns.push(lat);
        }
        if let Some(g) = self.groups.get_mut(&req.group) {
            g.inflight = g.inflight.saturating_sub(1);
        }
    }

    fn drain_released_into(&mut self, now: SimTime, out: &mut Vec<IoRequest>) {
        if self.held_total == 0 {
            return;
        }
        let vnow = self.vnow(now);
        let margin = self.margin_v();
        // The old determinism strategy: collect ids, then sort, because
        // HashMap iteration order is randomized per process.
        let mut ids: Vec<GroupId> = self
            .groups
            .iter()
            .filter(|(_, g)| !g.held.is_empty())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let hw = self.hweight(id, now);
            let g = self.groups.get_mut(&id).expect("collected above");
            while let Some((_, abs)) = g.held.front() {
                let charge = abs / hw;
                if g.vtime + charge <= vnow + margin {
                    let (req, _) = g.held.pop_front().expect("nonempty");
                    self.held_total -= 1;
                    g.vtime += charge;
                    g.spent_in_period += charge;
                    g.inflight += 1;
                    out.push(req);
                } else {
                    break;
                }
            }
        }
    }

    fn next_event(&self, now: SimTime) -> Option<SimTime> {
        let mut earliest = self.next_tick;
        for (&id, g) in &self.groups {
            if let Some((_, abs)) = g.held.front() {
                let charge = abs / self.hweight(id, now);
                let needed_v = g.vtime + charge - self.margin_v();
                let dv = needed_v - self.vbase;
                let t = if dv <= 0.0 {
                    now
                } else {
                    self.tbase + SimDuration::from_nanos((dv / self.vrate).ceil() as u64)
                };
                earliest = earliest.min(t.max(now));
            }
        }
        Some(earliest)
    }

    fn tick(&mut self, now: SimTime) {
        while self.next_tick <= now {
            let at = self.next_tick;
            self.adjust_vrate(at);
            self.next_tick += self.config.period;
        }
    }

    fn submit_cpu_overhead(&self, deep_queue: bool) -> SimDuration {
        let n = self.groups.len() as u64;
        if deep_queue {
            SimDuration::from_nanos(250 + 8 * n)
        } else {
            SimDuration::from_nanos(900 + 90 * n)
        }
    }

    fn name(&self) -> &'static str {
        "io.cost(map)"
    }
}

/// Minimal write surface shared by the arena controller and the map
/// baseline so the scale-out fixture below can drive either.
pub trait CostControl: QosController {
    /// Sets a group's `io.weight`.
    fn set_weight(&mut self, group: GroupId, weight: u32);
}

impl CostControl for IoCostController {
    fn set_weight(&mut self, group: GroupId, weight: u32) {
        IoCostController::set_weight(self, group, weight);
    }
}

impl CostControl for MapIoCost {
    fn set_weight(&mut self, group: GroupId, weight: u32) {
        MapIoCost::set_weight(self, group, weight);
    }
}

/// The 1 GiB/s, 100k-rand-IOPS model both benchmark controllers price
/// against.
#[must_use]
pub fn bench_config() -> IoCostConfig {
    IoCostConfig::new(
        cgroup_sim::IoCostModel {
            ctrl: cgroup_sim::CostCtrl::User,
            rbps: 1 << 30,
            rseqiops: 200_000,
            rrandiops: 100_000,
            wbps: 1 << 30,
            wseqiops: 200_000,
            wrandiops: 100_000,
        },
        cgroup_sim::IoCostQos::default(),
    )
}

/// A 4 KiB random read from `group` at `at`.
#[must_use]
pub fn read4k(id: ReqId, group: usize, at: SimTime) -> IoRequest {
    IoRequest::new(
        id,
        AppId(group),
        GroupId(group),
        DeviceId(0),
        IoOp::Read,
        AccessPattern::Random,
        4096,
        0,
        at,
    )
}

/// The probe tenant every per-I/O benchmark submits from (heavyweight so
/// its charges always clear the dispatch margin).
pub const PROBE_GROUP: usize = 1;

/// How many of `n` tenants the fixture leaves active: 10% (at least 1),
/// matching the acceptance gate's "≤10% active" condition.
#[must_use]
pub fn active_count(n: usize) -> usize {
    (n / 10).max(1)
}

/// Materializes `n` tenant groups on `ctl` and leaves [`active_count`]
/// of them (including the probe group) active with one uncompleted I/O
/// each, the steady state a loaded host presents to the controller every
/// period. Returns the simulated instant benchmark loops should resume
/// from.
///
/// Every group is touched once so the controller's per-group state is
/// materialized (the overhead model counts total groups), then the
/// activity window is allowed to lapse so only the re-activated tenants
/// remain on the hot path.
pub fn populate(ctl: &mut impl CostControl, n: usize) -> SimTime {
    ctl.set_weight(GroupId(PROBE_GROUP), 10_000);
    for g in 2..=n {
        ctl.set_weight(GroupId(g), [100, 200, 400, 800][g % 4]);
    }
    // Touch every tenant once; complete (or release) everything later.
    let mut inflight = Vec::new();
    let mut id: ReqId = 0;
    for g in 1..=n {
        if let SubmitOutcome::Pass(r) = ctl.on_submit(read4k(id, g, SimTime::ZERO), SimTime::ZERO) {
            inflight.push(r);
        }
        id += 1;
    }
    let settle = SimTime::from_secs(5);
    let mut released = Vec::new();
    ctl.drain_released_into(settle, &mut released);
    for r in inflight.into_iter().chain(released) {
        ctl.on_device_complete(&r, settle);
    }
    // Let the activity window lapse, then let a tick prune idle state.
    let idle = settle + SimDuration::from_millis(200);
    ctl.tick(idle);
    // Re-activate ~10%: one submitted-and-unfinished I/O pins each
    // tenant on the controller's hot path.
    let stride = n / active_count(n);
    for g in (1..=n).step_by(stride.max(1)) {
        let _ = ctl.on_submit(read4k(id, g, idle), idle);
        id += 1;
    }
    idle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_leaves_only_a_tenth_active() {
        let mut arena = IoCostController::new(bench_config());
        let now = populate(&mut arena, 64);
        // One more tick after another lapsed window: only the pinned
        // (inflight > 0) tenants survive pruning, so the next period's
        // walk is over ~10% of the fleet.
        arena.tick(now + SimDuration::from_millis(300));
        let probe = read4k(9_999, PROBE_GROUP, now);
        assert!(matches!(
            arena.on_submit(probe, now),
            SubmitOutcome::Pass(_) | SubmitOutcome::Held
        ));
    }

    #[test]
    fn map_baseline_shares_like_the_arena_controller() {
        // Same submission pattern → same pass/hold decisions and the
        // same hweight-driven pricing, so the bench compares equal work.
        let mut arena = IoCostController::new(bench_config());
        let mut map = MapIoCost::new(bench_config());
        let mut id = 0;
        let mut now = SimTime::ZERO;
        for round in 0..200 {
            now += SimDuration::from_micros(100);
            for g in 1..=4usize {
                let (a, m) = (
                    arena.on_submit(read4k(id, g, now), now),
                    map.on_submit(read4k(id, g, now), now),
                );
                match (&a, &m) {
                    (SubmitOutcome::Pass(ra), SubmitOutcome::Pass(rm)) => {
                        arena.on_device_complete(ra, now);
                        map.on_device_complete(rm, now);
                    }
                    (SubmitOutcome::Held, SubmitOutcome::Held) => {}
                    _ => panic!("outcome diverged at round {round} group {g}"),
                }
                id += 1;
            }
            let (ra, rm) = (arena.drain_released(now), map.drain_released(now));
            assert_eq!(ra.len(), rm.len(), "release diverged at round {round}");
            for (a, m) in ra.iter().zip(&rm) {
                assert_eq!(a.id, m.id);
                arena.on_device_complete(a, now);
                map.on_device_complete(m, now);
            }
            arena.tick(now);
            map.tick(now);
        }
    }
}
