//! A flattened, index-based view of a [`Hierarchy`].
//!
//! The pointer-walk accessors on [`Hierarchy`] (`path`, `io_max`,
//! `hweight`, …) chase `Option<GroupId>` parent links through `Result`
//! lookups on every query. That is fine for the paper's ≤8-group
//! scenarios, but a fleet host configures thousands of groups in 3–4
//! level trees, and the engine's build path and the QoS controllers ask
//! the same structural questions for every group. [`FlatTopology`]
//! snapshots the tree once into dense arrays indexed by the group id's
//! slot:
//!
//! * `parent[i]` / CSR `children` — structure as plain indices,
//! * `depth[i]` and an interned full `path[i]` — computed in one forward
//!   pass (a parent's slot is always smaller than its children's, since
//!   `create` appends and never reparents),
//! * bulk per-device effective-knob passes (`effective_io_max`,
//!   `effective_io_latency`, `weight_multipliers`) that resolve the
//!   whole fleet in O(groups) instead of O(groups × depth),
//! * an allocation-light [`FlatTopology::hweight`] equivalent to
//!   [`Hierarchy::hweight`].
//!
//! Tombstoned slots (removed groups: parent `None`, not the root) stay
//! addressable — like an open fd to an unlinked cgroup directory — and
//! resolve to their own-knobs-only values, exactly what the pointer
//! walks return when they stop at a missing parent.

use blkio::GroupId;

use crate::hierarchy::Hierarchy;
use crate::knobs::{DevNode, IoLatency, IoMax};

/// Sentinel for "no parent" in the dense parent array.
const NO_PARENT: u32 = u32::MAX;

/// A dense snapshot of a [`Hierarchy`]'s structure. See the module docs.
#[derive(Debug, Clone)]
pub struct FlatTopology {
    /// Parent slot per group; `NO_PARENT` for the root and tombstones.
    parent: Vec<u32>,
    /// Distance from the root; 0 for the root and for tombstones.
    depth: Vec<u32>,
    /// Full slash-separated path, interned once per group.
    paths: Vec<String>,
    /// CSR child lists: `children[child_offsets[i]..child_offsets[i+1]]`.
    child_offsets: Vec<u32>,
    children: Vec<u32>,
}

impl FlatTopology {
    /// Builds the flat view from a hierarchy snapshot.
    ///
    /// A single forward pass suffices: group ids are handed out in
    /// creation order and a child is always created after its parent,
    /// so `parent slot < child slot` holds for every live edge.
    #[must_use]
    pub fn build(h: &Hierarchy) -> Self {
        let n = h.len();
        let mut parent = vec![NO_PARENT; n];
        let mut depth = vec![0u32; n];
        let mut paths = vec![String::new(); n];
        let mut child_counts = vec![0u32; n];
        for id in 0..n {
            let g = h.group(GroupId(id)).expect("slot < len");
            match g.parent() {
                Some(p) => {
                    let pi = p.index();
                    debug_assert!(pi < id, "created-after-parent invariant");
                    parent[id] = pi as u32;
                    depth[id] = depth[pi] + 1;
                    paths[id] = format!("{}/{}", paths[pi], g.name());
                }
                None => {
                    // Root or tombstone: path is just the own name
                    // (empty for tombstones), matching `Hierarchy::path`.
                    paths[id] = g.name().to_owned();
                }
            }
        }
        // CSR children from the hierarchy's own child lists (these
        // exclude tombstones, which `remove` unlinks from the parent).
        for (id, count) in child_counts.iter_mut().enumerate() {
            let g = h.group(GroupId(id)).expect("slot < len");
            *count = g.children().len() as u32;
        }
        let mut child_offsets = vec![0u32; n + 1];
        for id in 0..n {
            child_offsets[id + 1] = child_offsets[id] + child_counts[id];
        }
        let mut children = vec![0u32; child_offsets[n] as usize];
        let mut cursor = child_offsets.clone();
        for id in 0..n {
            let g = h.group(GroupId(id)).expect("slot < len");
            for c in g.children() {
                children[cursor[id] as usize] = c.index() as u32;
                cursor[id] += 1;
            }
        }
        FlatTopology {
            parent,
            depth,
            paths,
            child_offsets,
            children,
        }
    }

    /// Number of slots (including tombstones), same as
    /// [`Hierarchy::len`] at snapshot time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the snapshot holds only the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Parent group, `None` for the root and for tombstones.
    #[must_use]
    #[inline]
    pub fn parent(&self, id: GroupId) -> Option<GroupId> {
        match self.parent.get(id.index()) {
            Some(&p) if p != NO_PARENT => Some(GroupId(p as usize)),
            _ => None,
        }
    }

    /// Distance from the root (0 for the root; 0 for tombstones, whose
    /// ancestor chain is empty).
    #[must_use]
    #[inline]
    pub fn depth(&self, id: GroupId) -> u32 {
        self.depth.get(id.index()).copied().unwrap_or(0)
    }

    /// Whether the slot is attached to the tree (the root, or any group
    /// with a parent). Tombstones are not live.
    #[must_use]
    pub fn is_live(&self, id: GroupId) -> bool {
        id == Hierarchy::ROOT || self.parent.get(id.index()).is_some_and(|&p| p != NO_PARENT)
    }

    /// The interned full path (`root/a/b`), built once at snapshot time.
    #[must_use]
    pub fn path(&self, id: GroupId) -> &str {
        self.paths.get(id.index()).map_or("", String::as_str)
    }

    /// Child groups in creation order.
    pub fn children(&self, id: GroupId) -> impl Iterator<Item = GroupId> + '_ {
        let idx = id.index();
        let range = if idx + 1 < self.child_offsets.len() {
            self.child_offsets[idx] as usize..self.child_offsets[idx + 1] as usize
        } else {
            0..0
        };
        self.children[range].iter().map(|&c| GroupId(c as usize))
    }

    /// The group and its ancestors, bottom-up (`id`, parent, …, root).
    pub fn self_and_ancestors(&self, id: GroupId) -> impl Iterator<Item = GroupId> + '_ {
        let mut cur = if id.index() < self.parent.len() {
            Some(id)
        } else {
            None
        };
        std::iter::from_fn(move || {
            let here = cur?;
            cur = self.parent(here);
            Some(here)
        })
    }

    /// Effective `io.max` for every slot on one device: the most
    /// restrictive limit along the ancestor chain, resolved for the
    /// whole fleet in a single forward pass (parents resolve before
    /// children). Index the result by the group id's slot.
    #[must_use]
    pub fn effective_io_max(&self, h: &Hierarchy, dev: DevNode) -> Vec<IoMax> {
        let mut eff = vec![IoMax::default(); self.len()];
        for idx in 0..self.len() {
            let mut e = if self.parent[idx] == NO_PARENT {
                IoMax::default()
            } else {
                eff[self.parent[idx] as usize]
            };
            let own = h.own_io_max(GroupId(idx), dev);
            if let Some(own) = own {
                e.rbps = min_limit(e.rbps, own.rbps);
                e.wbps = min_limit(e.wbps, own.wbps);
                e.riops = min_limit(e.riops, own.riops);
                e.wiops = min_limit(e.wiops, own.wiops);
            }
            eff[idx] = e;
        }
        eff
    }

    /// Effective `io.latency` target for every slot on one device: the
    /// group's own, or the nearest ancestor's, in one forward pass.
    #[must_use]
    pub fn effective_io_latency(&self, h: &Hierarchy, dev: DevNode) -> Vec<Option<IoLatency>> {
        let mut eff: Vec<Option<IoLatency>> = vec![None; self.len()];
        for idx in 0..self.len() {
            eff[idx] = h.own_io_latency(GroupId(idx), dev).or_else(|| {
                if self.parent[idx] == NO_PARENT {
                    None
                } else {
                    eff[self.parent[idx] as usize]
                }
            });
        }
        eff
    }

    /// Per-slot weight multiplier: the product over the slot's proper
    /// ancestors *below the root* of `weight/100`. A leaf's effective
    /// fleet weight is `own_weight × multiplier` — the identity when all
    /// intermediate slices keep the default weight of 100, which is how
    /// single-level scenarios stay bit-for-bit unchanged.
    #[must_use]
    pub fn weight_multipliers<F>(&self, weight_of: F) -> Vec<f64>
    where
        F: Fn(GroupId) -> u32,
    {
        let mut mult = vec![1.0f64; self.len()];
        for idx in 0..self.len() {
            let p = self.parent[idx];
            if p == NO_PARENT || p as usize == Hierarchy::ROOT.index() {
                continue;
            }
            mult[idx] = mult[p as usize] * f64::from(weight_of(GroupId(p as usize))) / 100.0;
        }
        mult
    }

    /// Hierarchical weight share of `id` among `active` groups —
    /// semantically identical to [`Hierarchy::hweight`] but driven by
    /// the flat arrays: live-marking is a dense bitmap walk and the
    /// root-to-leaf product reuses the cached depth instead of building
    /// a path vector per call.
    #[must_use]
    pub fn hweight<F>(&self, id: GroupId, active: &[GroupId], weight_of: F) -> f64
    where
        F: Fn(GroupId) -> u32,
    {
        let n = self.len();
        if id.index() >= n {
            return 0.0;
        }
        // Mark every slot that is active or has an active descendant.
        let mut live = vec![false; n];
        for &a in active {
            let mut cur = if a.index() < n { Some(a) } else { None };
            while let Some(g) = cur {
                if live[g.index()] {
                    break;
                }
                live[g.index()] = true;
                cur = self.parent(g);
            }
        }
        if !live[id.index()] {
            return 0.0;
        }
        // Multiply level shares walking up from `id`; same product as
        // the root-down walk, without materializing the path.
        let mut share = 1.0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            let total: u64 = self
                .children(p)
                .filter(|c| live[c.index()])
                .map(|c| u64::from(weight_of(c)))
                .sum();
            if total == 0 {
                return 0.0;
            }
            share *= f64::from(weight_of(cur)) / total as f64;
            cur = p;
        }
        share
    }
}

fn min_limit(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}
