//! Error type for hierarchy and knob operations.

use std::error::Error;
use std::fmt;

/// Errors produced by [`crate::Hierarchy`] operations and knob parsing.
///
/// These mirror the `-EINVAL`/`-EBUSY`/`-ENOENT` failures the kernel's
/// cgroupfs returns for the corresponding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgroupError {
    /// The referenced group id does not exist.
    NoSuchGroup,
    /// A sibling with this name already exists.
    DuplicateName(String),
    /// Group names may not be empty or contain `/` or NUL.
    InvalidName(String),
    /// Attempted to attach a process to a management group (one with
    /// controllers enabled in `subtree_control`) — the "no internal
    /// processes" rule.
    ProcessInManagementGroup,
    /// Attempted to enable a controller on a group that has member
    /// processes.
    ControllerOnProcessGroup,
    /// Attempted to set an I/O knob on a group whose parent does not have
    /// the `io` controller enabled.
    IoControllerNotEnabled,
    /// This knob may only be written in the root group (`io.cost.model`,
    /// `io.cost.qos`).
    RootOnly(&'static str),
    /// This knob may not be written in the root group (e.g. `io.max`).
    NotInRoot(&'static str),
    /// Unknown knob file name.
    NoSuchKnob(String),
    /// The knob value failed to parse; carries a description.
    InvalidValue(String),
    /// Attempted to delete a group that still has children or processes.
    Busy,
    /// The root group cannot be removed.
    CannotRemoveRoot,
    /// Structural operation on a group that has already been removed
    /// (its id reads as a tombstone, like an unlinked inode).
    RemovedGroup,
}

impl fmt::Display for CgroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgroupError::NoSuchGroup => f.write_str("no such cgroup"),
            CgroupError::DuplicateName(n) => write!(f, "cgroup `{n}` already exists"),
            CgroupError::InvalidName(n) => write!(f, "invalid cgroup name `{n}`"),
            CgroupError::ProcessInManagementGroup => {
                f.write_str("cannot attach process to a management group (no internal processes)")
            }
            CgroupError::ControllerOnProcessGroup => {
                f.write_str("cannot enable controller on a group with member processes")
            }
            CgroupError::IoControllerNotEnabled => {
                f.write_str("parent does not have the io controller enabled in subtree_control")
            }
            CgroupError::RootOnly(k) => write!(f, "`{k}` can only be set in the root cgroup"),
            CgroupError::NotInRoot(k) => write!(f, "`{k}` cannot be set in the root cgroup"),
            CgroupError::NoSuchKnob(k) => write!(f, "unknown knob file `{k}`"),
            CgroupError::InvalidValue(v) => write!(f, "invalid knob value: {v}"),
            CgroupError::Busy => f.write_str("cgroup still has children or processes"),
            CgroupError::CannotRemoveRoot => f.write_str("the root cgroup cannot be removed"),
            CgroupError::RemovedGroup => f.write_str("cgroup has already been removed"),
        }
    }
}

impl Error for CgroupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prose() {
        let msgs = [
            CgroupError::NoSuchGroup.to_string(),
            CgroupError::RootOnly("io.cost.qos").to_string(),
            CgroupError::InvalidValue("bad".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(CgroupError::Busy);
    }
}
