//! The cgroup-v2 tree: groups, the management/process-group rule,
//! knob storage, and hierarchical weight resolution.

use std::collections::{BTreeMap, HashMap, HashSet};

use blkio::{AppId, GroupId, PrioClass};
use serde::{Deserialize, Serialize};

use crate::knobs::{BfqWeight, DevNode, IoCostModel, IoCostQos, IoLatency, IoMax, IoWeight, Knob};
use crate::CgroupError;

/// Per-group knob state (what the group's cgroupfs files contain).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct KnobState {
    io_max: BTreeMap<DevNode, IoMax>,
    io_latency: BTreeMap<DevNode, IoLatency>,
    weight: IoWeight,
    bfq_weight: BfqWeight,
    prio: Option<PrioClass>,
}

/// One cgroup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Group {
    name: String,
    parent: Option<GroupId>,
    children: Vec<GroupId>,
    procs: Vec<AppId>,
    /// `+io` present in `cgroup.subtree_control` (management group).
    io_enabled: bool,
    knobs: KnobState,
}

impl Group {
    /// The group's own name (not the full path).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parent group, `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<GroupId> {
        self.parent
    }

    /// Child groups.
    #[must_use]
    pub fn children(&self) -> &[GroupId] {
        &self.children
    }

    /// Member processes (apps).
    #[must_use]
    pub fn procs(&self) -> &[AppId] {
        &self.procs
    }

    /// `true` if this group delegates I/O control to its children
    /// (management group).
    #[must_use]
    pub fn is_management(&self) -> bool {
        self.io_enabled
    }
}

/// A cgroup-v2 hierarchy.
///
/// See the crate docs for an end-to-end example. All structural rules the
/// paper describes (§IV-A) are enforced:
///
/// * processes cannot live in management groups and vice versa,
/// * I/O knobs require the *parent* to have `+io` in `subtree_control`
///   (except `io.prio.class`, which is per-process-group, and the
///   root-only `io.cost.*`),
/// * `io.cost.model` / `io.cost.qos` can only be written in the root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    groups: Vec<Group>,
    cost_model: BTreeMap<DevNode, IoCostModel>,
    cost_qos: BTreeMap<DevNode, IoCostQos>,
    proc_group: BTreeMap<AppId, GroupId>,
    /// Per-parent child-name sets, built lazily for wide fan-outs so
    /// [`Hierarchy::create`]'s duplicate-sibling check stays O(1)
    /// amortized (fleet scenarios hang tens of thousands of tenant
    /// leaves off a handful of teams; the naive sibling scan made
    /// scenario construction quadratic in fleet size). Pure cache: not
    /// serialized, rebuilt per parent on the next `create` after
    /// deserialization.
    #[serde(skip)]
    name_index: HashMap<GroupId, HashSet<String>>,
}

impl Hierarchy {
    /// The root group, present in every hierarchy.
    pub const ROOT: GroupId = GroupId(0);

    /// Creates a hierarchy containing only the root group.
    #[must_use]
    pub fn new() -> Self {
        Hierarchy {
            groups: vec![Group {
                name: "root".to_owned(),
                parent: None,
                children: Vec::new(),
                procs: Vec::new(),
                io_enabled: true,
                knobs: KnobState::default(),
            }],
            cost_model: BTreeMap::new(),
            cost_qos: BTreeMap::new(),
            proc_group: BTreeMap::new(),
            name_index: HashMap::new(),
        }
    }

    fn get(&self, id: GroupId) -> Result<&Group, CgroupError> {
        self.groups.get(id.index()).ok_or(CgroupError::NoSuchGroup)
    }

    fn get_mut(&mut self, id: GroupId) -> Result<&mut Group, CgroupError> {
        self.groups
            .get_mut(id.index())
            .ok_or(CgroupError::NoSuchGroup)
    }

    /// Like [`Hierarchy::get`], but rejects tombstoned (removed) slots.
    /// Structural mutations go through this; plain reads keep working on
    /// tombstones, matching an open fd to an unlinked cgroup directory.
    fn live(&self, id: GroupId) -> Result<&Group, CgroupError> {
        let g = self.get(id)?;
        if id != Self::ROOT && g.parent.is_none() {
            return Err(CgroupError::RemovedGroup);
        }
        Ok(g)
    }

    /// Borrow a group.
    ///
    /// # Errors
    ///
    /// [`CgroupError::NoSuchGroup`] if `id` is stale.
    pub fn group(&self, id: GroupId) -> Result<&Group, CgroupError> {
        self.get(id)
    }

    /// Number of groups (including removed slots — ids are never reused,
    /// matching inode behaviour; removed groups read as errors).
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` if only the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.len() == 1
    }

    /// All live group ids, root first, in creation order.
    #[must_use]
    pub fn group_ids(&self) -> Vec<GroupId> {
        (0..self.groups.len()).map(GroupId).collect()
    }

    /// Full slash-separated path of a group.
    ///
    /// # Errors
    ///
    /// [`CgroupError::NoSuchGroup`] if `id` is stale.
    pub fn path(&self, id: GroupId) -> Result<String, CgroupError> {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(g) = cur {
            let group = self.get(g)?;
            parts.push(group.name.clone());
            cur = group.parent;
        }
        parts.reverse();
        Ok(parts.join("/"))
    }

    /// Creates a child group under `parent`.
    ///
    /// # Errors
    ///
    /// * [`CgroupError::InvalidName`] for empty names or names with `/`,
    /// * [`CgroupError::DuplicateName`] if a sibling has the name,
    /// * [`CgroupError::NoSuchGroup`] if `parent` is stale,
    /// * [`CgroupError::RemovedGroup`] if `parent` has been removed.
    pub fn create(&mut self, parent: GroupId, name: &str) -> Result<GroupId, CgroupError> {
        if name.is_empty() || name.contains('/') || name.contains('\0') {
            return Err(CgroupError::InvalidName(name.to_owned()));
        }
        let fanout = self.live(parent)?.children.len();
        // Duplicate-sibling check: linear for small families, via the
        // lazily built per-parent name set once the fan-out is wide
        // enough that repeated scans would turn bulk creation quadratic.
        const INDEX_FANOUT: usize = 32;
        if self.name_index.contains_key(&parent) || fanout >= INDEX_FANOUT {
            if !self.name_index.contains_key(&parent) {
                let names: HashSet<String> = self.groups[parent.index()]
                    .children
                    .iter()
                    .map(|&c| self.groups[c.index()].name.clone())
                    .collect();
                self.name_index.insert(parent, names);
            }
            let names = self
                .name_index
                .get_mut(&parent)
                .expect("index entry just ensured");
            if !names.insert(name.to_owned()) {
                return Err(CgroupError::DuplicateName(name.to_owned()));
            }
        } else if self.groups[parent.index()]
            .children
            .iter()
            .any(|&c| self.groups[c.index()].name == name)
        {
            return Err(CgroupError::DuplicateName(name.to_owned()));
        }
        let id = GroupId(self.groups.len());
        self.groups.push(Group {
            name: name.to_owned(),
            parent: Some(parent),
            children: Vec::new(),
            procs: Vec::new(),
            io_enabled: false,
            knobs: KnobState::default(),
        });
        self.get_mut(parent)?.children.push(id);
        Ok(id)
    }

    /// Enables the `io` controller in the group's `subtree_control`,
    /// turning it into a management group whose children may carry I/O
    /// knobs.
    ///
    /// # Errors
    ///
    /// * [`CgroupError::ControllerOnProcessGroup`] if the group already
    ///   has member processes,
    /// * [`CgroupError::RemovedGroup`] if the group has been removed.
    pub fn enable_io(&mut self, id: GroupId) -> Result<(), CgroupError> {
        let g = self.live(id)?;
        if !g.procs.is_empty() {
            return Err(CgroupError::ControllerOnProcessGroup);
        }
        self.get_mut(id)?.io_enabled = true;
        Ok(())
    }

    /// Attaches a process (app) to a group, making it a process group.
    ///
    /// # Errors
    ///
    /// * [`CgroupError::ProcessInManagementGroup`] if the group has `+io`
    ///   enabled — the "no internal processes" rule (the root is exempt,
    ///   as in the kernel),
    /// * [`CgroupError::RemovedGroup`] if the group has been removed.
    pub fn attach_process(&mut self, id: GroupId, app: AppId) -> Result<(), CgroupError> {
        let g = self.live(id)?;
        if g.io_enabled && id != Self::ROOT {
            return Err(CgroupError::ProcessInManagementGroup);
        }
        if let Some(old) = self.proc_group.insert(app, id) {
            self.get_mut(old)?.procs.retain(|&a| a != app);
        }
        self.get_mut(id)?.procs.push(app);
        Ok(())
    }

    /// The group a process currently lives in (root if never attached).
    #[must_use]
    pub fn group_of(&self, app: AppId) -> GroupId {
        self.proc_group.get(&app).copied().unwrap_or(Self::ROOT)
    }

    /// Removes an empty leaf group.
    ///
    /// # Errors
    ///
    /// * [`CgroupError::CannotRemoveRoot`],
    /// * [`CgroupError::Busy`] if the group still has children or procs,
    /// * [`CgroupError::RemovedGroup`] if it was already removed.
    pub fn remove(&mut self, id: GroupId) -> Result<(), CgroupError> {
        if id == Self::ROOT {
            return Err(CgroupError::CannotRemoveRoot);
        }
        let g = self.live(id)?;
        if !g.children.is_empty() || !g.procs.is_empty() {
            return Err(CgroupError::Busy);
        }
        let parent = g.parent.ok_or(CgroupError::RemovedGroup)?;
        self.get_mut(parent)?.children.retain(|&c| c != id);
        // Tombstone: rename so the slot reads as detached. Ids are not
        // reused.
        let slot = self.get_mut(id)?;
        slot.parent = None;
        let name = std::mem::take(&mut slot.name);
        if let Some(names) = self.name_index.get_mut(&parent) {
            names.remove(&name);
        }
        Ok(())
    }

    /// Writes a knob file on a group, enforcing all placement rules.
    ///
    /// # Errors
    ///
    /// Any [`CgroupError`] from parsing or rule violations.
    pub fn write(&mut self, id: GroupId, file: &str, value: &str) -> Result<(), CgroupError> {
        let knob = Knob::parse(file, value)?;
        self.apply(id, knob)
    }

    /// Applies an already-parsed knob, enforcing all placement rules.
    ///
    /// # Errors
    ///
    /// Rule violations: see [`Hierarchy::write`].
    pub fn apply(&mut self, id: GroupId, knob: Knob) -> Result<(), CgroupError> {
        // Placement rules.
        match &knob {
            Knob::CostModel(..) | Knob::CostQos(..) => {
                if id != Self::ROOT {
                    return Err(CgroupError::RootOnly(knob.kind().file_name()));
                }
            }
            Knob::PrioClass(_) => {
                // Not part of the delegation model; meaningful on process
                // groups only (it is not inheritable). Allowed anywhere
                // but the root.
                if id == Self::ROOT {
                    return Err(CgroupError::NotInRoot("io.prio.class"));
                }
                self.live(id)?;
            }
            _ => {
                if id == Self::ROOT {
                    return Err(CgroupError::NotInRoot(knob.kind().file_name()));
                }
                let parent = self.get(id)?.parent.ok_or(CgroupError::RemovedGroup)?;
                if !self.get(parent)?.io_enabled {
                    return Err(CgroupError::IoControllerNotEnabled);
                }
            }
        }
        match knob {
            Knob::Max(dev, v) => {
                let g = self.get_mut(id)?;
                if v.is_unlimited() {
                    g.knobs.io_max.remove(&dev);
                } else {
                    g.knobs.io_max.insert(dev, v);
                }
            }
            Knob::Latency(dev, v) => {
                let g = self.get_mut(id)?;
                if v.target_us == 0 {
                    g.knobs.io_latency.remove(&dev);
                } else {
                    g.knobs.io_latency.insert(dev, v);
                }
            }
            Knob::Weight(v) => self.get_mut(id)?.knobs.weight = v,
            Knob::BfqWeight(v) => self.get_mut(id)?.knobs.bfq_weight = v,
            Knob::PrioClass(v) => self.get_mut(id)?.knobs.prio = Some(v),
            Knob::CostModel(dev, v) => {
                self.cost_model.insert(dev, v);
            }
            Knob::CostQos(dev, v) => {
                self.cost_qos.insert(dev, v);
            }
        }
        Ok(())
    }

    /// Reads back a knob file as the kernel would render it.
    ///
    /// # Errors
    ///
    /// [`CgroupError::NoSuchKnob`] / [`CgroupError::NoSuchGroup`].
    pub fn read(&self, id: GroupId, file: &str) -> Result<String, CgroupError> {
        use crate::knobs::KnobKind;
        let kind = KnobKind::from_file_name(file)?;
        let g = self.get(id)?;
        Ok(match kind {
            KnobKind::Max => g
                .knobs
                .io_max
                .iter()
                .map(|(d, m)| format!("{d} {m}"))
                .collect::<Vec<_>>()
                .join("\n"),
            KnobKind::Latency => g
                .knobs
                .io_latency
                .iter()
                .map(|(d, l)| format!("{d} {l}"))
                .collect::<Vec<_>>()
                .join("\n"),
            KnobKind::Weight => g.knobs.weight.to_string(),
            KnobKind::BfqWeight => g.knobs.bfq_weight.to_string(),
            KnobKind::PrioClass => g.knobs.prio.unwrap_or_default().as_str().to_owned(),
            KnobKind::CostModel => self
                .cost_model
                .iter()
                .map(|(d, m)| format!("{d} {m}"))
                .collect::<Vec<_>>()
                .join("\n"),
            KnobKind::CostQos => self
                .cost_qos
                .iter()
                .map(|(d, q)| format!("{d} {q}"))
                .collect::<Vec<_>>()
                .join("\n"),
        })
    }

    // ------------------------------------------------------------------
    // Effective-configuration accessors used by the controllers.
    // ------------------------------------------------------------------

    /// Snapshots the tree into a [`crate::FlatTopology`]: dense
    /// parent/children indices, cached depths, and interned paths for
    /// fleet-scale bulk queries.
    #[must_use]
    pub fn flatten(&self) -> crate::FlatTopology {
        crate::FlatTopology::build(self)
    }

    /// The group's *own* `io.max` entry for a device, ignoring
    /// ancestors (the raw file content; [`Hierarchy::io_max`] resolves
    /// the hierarchical minimum).
    #[must_use]
    pub fn own_io_max(&self, id: GroupId, dev: DevNode) -> Option<IoMax> {
        self.get(id)
            .ok()
            .and_then(|g| g.knobs.io_max.get(&dev).copied())
    }

    /// The group's *own* `io.latency` entry for a device, ignoring
    /// ancestors.
    #[must_use]
    pub fn own_io_latency(&self, id: GroupId, dev: DevNode) -> Option<IoLatency> {
        self.get(id)
            .ok()
            .and_then(|g| g.knobs.io_latency.get(&dev).copied())
    }

    /// Effective `io.max` for a group on a device: the most restrictive
    /// limit along the ancestor chain (hierarchical throttling).
    #[must_use]
    pub fn io_max(&self, id: GroupId, dev: DevNode) -> IoMax {
        let mut eff = IoMax::default();
        let mut cur = Some(id);
        while let Some(g) = cur {
            let Ok(group) = self.get(g) else { break };
            if let Some(m) = group.knobs.io_max.get(&dev) {
                eff.rbps = min_limit(eff.rbps, m.rbps);
                eff.wbps = min_limit(eff.wbps, m.wbps);
                eff.riops = min_limit(eff.riops, m.riops);
                eff.wiops = min_limit(eff.wiops, m.wiops);
            }
            cur = group.parent;
        }
        eff
    }

    /// Effective `io.latency` target: the group's own, or the nearest
    /// ancestor's (children inherit the protection domain).
    #[must_use]
    pub fn io_latency(&self, id: GroupId, dev: DevNode) -> Option<IoLatency> {
        let mut cur = Some(id);
        while let Some(g) = cur {
            let Ok(group) = self.get(g) else { break };
            if let Some(l) = group.knobs.io_latency.get(&dev) {
                return Some(*l);
            }
            cur = group.parent;
        }
        None
    }

    /// The group's own `io.weight` for a device (default 100).
    #[must_use]
    pub fn io_weight(&self, id: GroupId, dev: DevNode) -> u32 {
        self.get(id)
            .map_or(IoWeight::DEFAULT, |g| g.knobs.weight.for_dev(dev))
    }

    /// The group's own `io.bfq.weight` for a device (default 100).
    #[must_use]
    pub fn bfq_weight(&self, id: GroupId, dev: DevNode) -> u32 {
        self.get(id)
            .map_or(IoWeight::DEFAULT, |g| g.knobs.bfq_weight.for_dev(dev))
    }

    /// The I/O priority class effective for processes directly in this
    /// group. **Not inheritable** (per the paper and kernel): only the
    /// group's own setting counts.
    #[must_use]
    pub fn prio_class(&self, id: GroupId) -> PrioClass {
        self.get(id)
            .ok()
            .and_then(|g| g.knobs.prio)
            .unwrap_or_default()
    }

    /// The root `io.cost.model` for a device, if configured.
    #[must_use]
    pub fn cost_model(&self, dev: DevNode) -> Option<&IoCostModel> {
        self.cost_model.get(&dev)
    }

    /// The root `io.cost.qos` for a device, if configured.
    #[must_use]
    pub fn cost_qos(&self, dev: DevNode) -> Option<&IoCostQos> {
        self.cost_qos.get(&dev)
    }

    /// Hierarchical weight share of `id` among `active` groups, using
    /// `weight_of` to read each group's absolute weight (so the same
    /// routine serves both iocost's `io.weight` and BFQ's
    /// `io.bfq.weight`).
    ///
    /// The share is the product along the path root → `id` of
    /// `w(child) / Σ w(active siblings)`, where a group is *active* if it
    /// is in `active` or has an active descendant. Returns 0 if `id` is
    /// not active.
    #[must_use]
    pub fn hweight<F>(&self, id: GroupId, active: &HashSet<GroupId>, weight_of: F) -> f64
    where
        F: Fn(GroupId) -> u32,
    {
        // Mark every group that is active or has an active descendant.
        let mut live: HashSet<GroupId> = HashSet::new();
        for &a in active {
            let mut cur = Some(a);
            while let Some(g) = cur {
                if !live.insert(g) {
                    break;
                }
                cur = self.get(g).ok().and_then(Group::parent);
            }
        }
        if !live.contains(&id) {
            return 0.0;
        }
        // Walk from the root down to `id`, multiplying level shares.
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(g) = cur {
            path.push(g);
            cur = self.get(g).ok().and_then(Group::parent);
        }
        path.reverse(); // root .. id
        let mut share = 1.0;
        for w in path.windows(2) {
            let (parent, child) = (w[0], w[1]);
            let Ok(pg) = self.get(parent) else { return 0.0 };
            let total: u64 = pg
                .children
                .iter()
                .filter(|c| live.contains(c))
                .map(|&c| u64::from(weight_of(c)))
                .sum();
            if total == 0 {
                return 0.0;
            }
            share *= f64::from(weight_of(child)) / total as f64;
        }
        share
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new()
    }
}

fn min_limit(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_hierarchy() -> (Hierarchy, GroupId, GroupId, GroupId, GroupId) {
        // Fig. 1: root -> controller.slice (+io) -> {container-a.service,
        // container-b.service, broken.service}
        let mut h = Hierarchy::new();
        let slice = h.create(Hierarchy::ROOT, "controller.slice").unwrap();
        h.enable_io(slice).unwrap();
        let a = h.create(slice, "container-a.service").unwrap();
        let b = h.create(slice, "container-b.service").unwrap();
        let broken = h.create(slice, "broken.service").unwrap();
        (h, slice, a, b, broken)
    }

    #[test]
    fn paths_render() {
        let (h, slice, a, ..) = fig1_hierarchy();
        assert_eq!(h.path(Hierarchy::ROOT).unwrap(), "root");
        assert_eq!(h.path(slice).unwrap(), "root/controller.slice");
        assert_eq!(
            h.path(a).unwrap(),
            "root/controller.slice/container-a.service"
        );
    }

    #[test]
    fn duplicate_and_invalid_names_rejected() {
        let mut h = Hierarchy::new();
        h.create(Hierarchy::ROOT, "x").unwrap();
        assert_eq!(
            h.create(Hierarchy::ROOT, "x"),
            Err(CgroupError::DuplicateName("x".into()))
        );
        assert!(matches!(
            h.create(Hierarchy::ROOT, "a/b"),
            Err(CgroupError::InvalidName(_))
        ));
        assert!(matches!(
            h.create(Hierarchy::ROOT, ""),
            Err(CgroupError::InvalidName(_))
        ));
    }

    #[test]
    fn no_internal_processes_rule() {
        let (mut h, slice, a, ..) = fig1_hierarchy();
        // slice is a management group: no processes allowed.
        assert_eq!(
            h.attach_process(slice, AppId(0)),
            Err(CgroupError::ProcessInManagementGroup)
        );
        // a is a process group: attaching works...
        h.attach_process(a, AppId(0)).unwrap();
        assert_eq!(h.group_of(AppId(0)), a);
        // ...and enabling a controller on it now fails.
        assert_eq!(h.enable_io(a), Err(CgroupError::ControllerOnProcessGroup));
    }

    #[test]
    fn broken_service_cannot_have_io_knobs() {
        // "broken.service" is a child of a process-holding... actually in
        // Fig. 1 broken.service is a *child of a process group's sibling*;
        // the rule illustrated is that children of groups WITHOUT +io in
        // subtree_control cannot set knobs. Model that directly:
        let mut h = Hierarchy::new();
        let slice = h.create(Hierarchy::ROOT, "no-io.slice").unwrap();
        // no enable_io on slice
        let broken = h.create(slice, "broken.service").unwrap();
        assert_eq!(
            h.write(broken, "io.max", "259:0 rbps=1000"),
            Err(CgroupError::IoControllerNotEnabled)
        );
    }

    #[test]
    fn root_only_and_not_in_root_rules() {
        let (mut h, _, a, ..) = fig1_hierarchy();
        assert_eq!(
            h.write(a, "io.cost.qos", "259:0 enable=1 min=50 max=100"),
            Err(CgroupError::RootOnly("io.cost.qos"))
        );
        h.write(
            Hierarchy::ROOT,
            "io.cost.model",
            "259:0 ctrl=user rbps=100 rseqiops=1 rrandiops=1 wbps=1 wseqiops=1 wrandiops=1",
        )
        .unwrap();
        assert!(h.cost_model(DevNode::nvme(0)).is_some());
        assert_eq!(
            h.write(Hierarchy::ROOT, "io.max", "259:0 rbps=1"),
            Err(CgroupError::NotInRoot("io.max"))
        );
        assert_eq!(
            h.write(Hierarchy::ROOT, "io.prio.class", "rt"),
            Err(CgroupError::NotInRoot("io.prio.class"))
        );
    }

    #[test]
    fn prio_class_works_without_parent_io() {
        let mut h = Hierarchy::new();
        let slice = h.create(Hierarchy::ROOT, "s").unwrap();
        // No +io anywhere below root; io.prio.class is exempt.
        let g = h.create(slice, "g").unwrap();
        h.write(g, "io.prio.class", "idle").unwrap();
        assert_eq!(h.prio_class(g), PrioClass::Idle);
        // And it is NOT inherited by children.
        let child = h.create(g, "child").unwrap();
        assert_eq!(h.prio_class(child), PrioClass::BestEffort);
    }

    #[test]
    fn io_max_is_hierarchically_min() {
        let (mut h, slice, a, ..) = fig1_hierarchy();
        h.write(slice, "io.max", "259:0 rbps=1000").unwrap();
        h.write(a, "io.max", "259:0 rbps=5000 wbps=70").unwrap();
        let eff = h.io_max(a, DevNode::nvme(0));
        assert_eq!(eff.rbps, Some(1000)); // parent is tighter
        assert_eq!(eff.wbps, Some(70));
        // Writing all-max clears the entry.
        h.write(a, "io.max", "259:0 rbps=max wbps=max").unwrap();
        let eff = h.io_max(a, DevNode::nvme(0));
        assert_eq!(eff.rbps, Some(1000));
        assert_eq!(eff.wbps, None);
    }

    #[test]
    fn io_latency_inherits_from_ancestors() {
        let (mut h, slice, a, ..) = fig1_hierarchy();
        h.write(slice, "io.latency", "259:0 target=200").unwrap();
        assert_eq!(h.io_latency(a, DevNode::nvme(0)).unwrap().target_us, 200);
        h.write(a, "io.latency", "259:0 target=75").unwrap();
        assert_eq!(h.io_latency(a, DevNode::nvme(0)).unwrap().target_us, 75);
        // target=0 clears.
        h.write(a, "io.latency", "259:0 target=0").unwrap();
        assert_eq!(h.io_latency(a, DevNode::nvme(0)).unwrap().target_us, 200);
    }

    #[test]
    fn weights_default_to_100() {
        let (mut h, _, a, b, _) = fig1_hierarchy();
        assert_eq!(h.io_weight(a, DevNode::nvme(0)), 100);
        h.write(a, "io.weight", "default 10000").unwrap();
        h.write(b, "io.bfq.weight", "default 1000").unwrap();
        assert_eq!(h.io_weight(a, DevNode::nvme(0)), 10_000);
        assert_eq!(h.bfq_weight(b, DevNode::nvme(0)), 1_000);
        assert_eq!(h.bfq_weight(a, DevNode::nvme(0)), 100);
    }

    #[test]
    fn read_renders_kernel_style() {
        let (mut h, _, a, ..) = fig1_hierarchy();
        h.write(a, "io.max", "259:0 rbps=1000").unwrap();
        let shown = h.read(a, "io.max").unwrap();
        assert_eq!(shown, "259:0 rbps=1000 wbps=max riops=max wiops=max");
        assert_eq!(h.read(a, "io.weight").unwrap(), "default 100");
        assert_eq!(h.read(a, "io.prio.class").unwrap(), "best-effort");
        assert!(matches!(
            h.read(a, "cpu.max"),
            Err(CgroupError::NoSuchKnob(_))
        ));
    }

    #[test]
    fn remove_rules() {
        let (mut h, slice, a, b, broken) = fig1_hierarchy();
        assert_eq!(
            h.remove(Hierarchy::ROOT),
            Err(CgroupError::CannotRemoveRoot)
        );
        assert_eq!(h.remove(slice), Err(CgroupError::Busy));
        h.attach_process(a, AppId(1)).unwrap();
        assert_eq!(h.remove(a), Err(CgroupError::Busy));
        h.remove(b).unwrap();
        h.remove(broken).unwrap();
        assert!(h.group(b).is_ok(), "tombstoned slot still readable");
        assert_eq!(h.group(b).unwrap().parent(), None);
    }

    #[test]
    fn tombstones_reject_structural_operations() {
        let (mut h, _, _, b, _) = fig1_hierarchy();
        h.remove(b).unwrap();
        assert_eq!(h.remove(b), Err(CgroupError::RemovedGroup));
        assert_eq!(h.create(b, "child"), Err(CgroupError::RemovedGroup));
        assert_eq!(
            h.attach_process(b, AppId(7)),
            Err(CgroupError::RemovedGroup)
        );
        assert_eq!(h.enable_io(b), Err(CgroupError::RemovedGroup));
        assert_eq!(
            h.write(b, "io.prio.class", "idle"),
            Err(CgroupError::RemovedGroup)
        );
        assert_eq!(
            h.write(b, "io.max", "259:0 rbps=1000"),
            Err(CgroupError::RemovedGroup)
        );
        // Reads still work (open-fd semantics) and truly-unknown ids
        // stay NoSuchGroup.
        assert!(h.group(b).is_ok());
        assert_eq!(h.remove(GroupId(99)), Err(CgroupError::NoSuchGroup));
    }

    #[test]
    fn hweight_flat_two_groups() {
        // The paper's example: A weight 1000, B weight 1 → B gets 1/1001.
        let (mut h, _, a, b, _) = fig1_hierarchy();
        h.write(a, "io.bfq.weight", "default 1000").unwrap();
        h.write(b, "io.bfq.weight", "default 1").unwrap();
        let active: HashSet<GroupId> = [a, b].into_iter().collect();
        let dev = DevNode::nvme(0);
        let wa = h.hweight(a, &active, |g| h.bfq_weight(g, dev));
        let wb = h.hweight(b, &active, |g| h.bfq_weight(g, dev));
        assert!((wa - 1000.0 / 1001.0).abs() < 1e-12);
        assert!((wb - 1.0 / 1001.0).abs() < 1e-12);
        assert!((wa + wb - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hweight_ignores_inactive_siblings() {
        let (h, _, a, b, _) = fig1_hierarchy();
        let only_a: HashSet<GroupId> = [a].into_iter().collect();
        let dev = DevNode::nvme(0);
        assert!((h.hweight(a, &only_a, |g| h.io_weight(g, dev)) - 1.0).abs() < 1e-12);
        assert_eq!(h.hweight(b, &only_a, |g| h.io_weight(g, dev)), 0.0);
    }

    #[test]
    fn hweight_is_hierarchical() {
        // root -> s1 (w 100) -> {x (w 100), y (w 300)}; root -> s2 (w 100) -> z
        let mut h = Hierarchy::new();
        let s1 = h.create(Hierarchy::ROOT, "s1").unwrap();
        let s2 = h.create(Hierarchy::ROOT, "s2").unwrap();
        h.enable_io(s1).unwrap();
        h.enable_io(s2).unwrap();
        let x = h.create(s1, "x").unwrap();
        let y = h.create(s1, "y").unwrap();
        let z = h.create(s2, "z").unwrap();
        h.write(y, "io.weight", "default 300").unwrap();
        let active: HashSet<GroupId> = [x, y, z].into_iter().collect();
        let dev = DevNode::nvme(0);
        let wf = |g: GroupId| h.io_weight(g, dev);
        let wx = h.hweight(x, &active, wf);
        let wy = h.hweight(y, &active, wf);
        let wz = h.hweight(z, &active, wf);
        // s1 and s2 split 50/50; inside s1, x:y = 100:300.
        assert!((wx - 0.5 * 0.25).abs() < 1e-12);
        assert!((wy - 0.5 * 0.75).abs() < 1e-12);
        assert!((wz - 0.5).abs() < 1e-12);
        assert!((wx + wy + wz - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reattaching_process_moves_it() {
        let (mut h, _, a, b, _) = fig1_hierarchy();
        h.attach_process(a, AppId(3)).unwrap();
        h.attach_process(b, AppId(3)).unwrap();
        assert_eq!(h.group_of(AppId(3)), b);
        assert!(h.group(a).unwrap().procs().is_empty());
        assert_eq!(h.group(b).unwrap().procs(), &[AppId(3)]);
    }

    #[test]
    fn unattached_process_defaults_to_root() {
        let h = Hierarchy::new();
        assert_eq!(h.group_of(AppId(9)), Hierarchy::ROOT);
    }
}
