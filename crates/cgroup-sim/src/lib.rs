//! # cgroup-sim — a cgroup-v2 hierarchy model for I/O control
//!
//! Models the part of cgroup v2 that the paper exercises (§IV-A, Fig. 1):
//!
//! * a [`Hierarchy`] of groups rooted at [`Hierarchy::ROOT`],
//! * the **management vs. process group** distinction: a group either
//!   delegates resource control to children (has `+io` in
//!   `cgroup.subtree_control`) or holds processes — never both,
//! * the six I/O knob files with the kernel's sysfs value grammar:
//!   `io.max`, `io.latency`, `io.weight`, `io.bfq.weight`,
//!   `io.prio.class`, and the root-only `io.cost.model` / `io.cost.qos`,
//! * hierarchical weight resolution (the `hweight` that both BFQ and
//!   iocost derive from absolute weights).
//!
//! The simulated controllers in `ioqos`/`iosched-sim` read their
//! configuration from this crate, exactly as the kernel controllers read
//! theirs from cgroupfs.
//!
//! # Example
//!
//! ```
//! use cgroup_sim::{Hierarchy, DevNode};
//! use blkio::AppId;
//!
//! # fn main() -> Result<(), cgroup_sim::CgroupError> {
//! let mut h = Hierarchy::new();
//! let slice = h.create(Hierarchy::ROOT, "controller.slice")?;
//! h.enable_io(slice)?; // management group: children may set io.* knobs
//! let a = h.create(slice, "container-a.service")?;
//! h.attach_process(a, AppId(0))?;
//! h.write(a, "io.max", "259:0 rbps=1572864000 wbps=max")?;
//! let max = h.io_max(a, DevNode::nvme(0));
//! assert_eq!(max.rbps, Some(1_572_864_000));
//! assert_eq!(max.wbps, None);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flat;
mod hierarchy;
mod knobs;

pub use error::CgroupError;
pub use flat::FlatTopology;
pub use hierarchy::{Group, Hierarchy};
pub use knobs::{
    BfqWeight, CostCtrl, DevNode, IoCostModel, IoCostQos, IoLatency, IoMax, IoWeight, Knob,
    KnobKind,
};
