//! The I/O knob value types and their kernel sysfs grammars.
//!
//! Each knob type provides `parse_*` from the cgroup-v2 file grammar and a
//! `Display` impl that re-renders it, so knob files round-trip.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::CgroupError;

/// A block-device node identified by `major:minor`, the key used by all
/// per-device knob lines (`io.max`, `io.latency`, `io.cost.*`).
///
/// # Example
///
/// ```
/// use cgroup_sim::DevNode;
/// let d = DevNode::nvme(2);
/// assert_eq!(d.to_string(), "259:2");
/// assert_eq!("259:2".parse::<DevNode>().unwrap(), d);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DevNode {
    /// Device major number.
    pub major: u32,
    /// Device minor number.
    pub minor: u32,
}

impl DevNode {
    /// NVMe character-device convention used throughout the simulator:
    /// major 259 (`blkext`), minor = device index.
    #[must_use]
    pub const fn nvme(index: u32) -> Self {
        DevNode {
            major: 259,
            minor: index,
        }
    }

    /// The simulator device index, assuming the [`DevNode::nvme`]
    /// convention.
    #[must_use]
    pub const fn nvme_index(self) -> u32 {
        self.minor
    }
}

impl fmt::Display for DevNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.major, self.minor)
    }
}

impl std::str::FromStr for DevNode {
    type Err = CgroupError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (maj, min) = s
            .split_once(':')
            .ok_or_else(|| CgroupError::InvalidValue(format!("`{s}` is not MAJOR:MINOR")))?;
        let major = maj
            .parse()
            .map_err(|_| CgroupError::InvalidValue(format!("bad major in `{s}`")))?;
        let minor = min
            .parse()
            .map_err(|_| CgroupError::InvalidValue(format!("bad minor in `{s}`")))?;
        Ok(DevNode { major, minor })
    }
}

fn parse_limit(tok: &str) -> Result<Option<u64>, CgroupError> {
    if tok == "max" {
        Ok(None)
    } else {
        tok.parse::<u64>()
            .map(Some)
            .map_err(|_| CgroupError::InvalidValue(format!("`{tok}` is not a number or `max`")))
    }
}

fn fmt_limit(v: Option<u64>) -> String {
    v.map_or_else(|| "max".to_owned(), |n| n.to_string())
}

/// `io.max` — static bandwidth/IOPS limits for one device.
///
/// Grammar: `MAJOR:MINOR [rbps=V] [wbps=V] [riops=V] [wiops=V]` where each
/// `V` is a number or `max` (unlimited). `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IoMax {
    /// Read bytes per second.
    pub rbps: Option<u64>,
    /// Write bytes per second.
    pub wbps: Option<u64>,
    /// Read IOs per second.
    pub riops: Option<u64>,
    /// Write IOs per second.
    pub wiops: Option<u64>,
}

impl IoMax {
    /// `true` when every limit is `max` (the knob has no effect).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.rbps.is_none() && self.wbps.is_none() && self.riops.is_none() && self.wiops.is_none()
    }

    /// Parses the fields after the device key.
    ///
    /// # Errors
    ///
    /// [`CgroupError::InvalidValue`] on unknown keys or malformed numbers.
    pub fn parse_fields(s: &str) -> Result<Self, CgroupError> {
        let mut out = IoMax::default();
        for field in s.split_whitespace() {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| CgroupError::InvalidValue(format!("`{field}` is not key=value")))?;
            match k {
                "rbps" => out.rbps = parse_limit(v)?,
                "wbps" => out.wbps = parse_limit(v)?,
                "riops" => out.riops = parse_limit(v)?,
                "wiops" => out.wiops = parse_limit(v)?,
                other => {
                    return Err(CgroupError::InvalidValue(format!(
                        "unknown io.max key `{other}`"
                    )))
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for IoMax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rbps={} wbps={} riops={} wiops={}",
            fmt_limit(self.rbps),
            fmt_limit(self.wbps),
            fmt_limit(self.riops),
            fmt_limit(self.wiops)
        )
    }
}

/// `io.latency` — a P90 completion-latency target for one device, in
/// microseconds. Grammar: `MAJOR:MINOR target=USEC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoLatency {
    /// Target tail latency in microseconds.
    pub target_us: u64,
}

impl IoLatency {
    /// Parses the fields after the device key.
    ///
    /// # Errors
    ///
    /// [`CgroupError::InvalidValue`] on anything but `target=<usec>`.
    pub fn parse_fields(s: &str) -> Result<Self, CgroupError> {
        let mut target = None;
        for field in s.split_whitespace() {
            match field.split_once('=') {
                Some(("target", v)) => {
                    target = Some(v.parse().map_err(|_| {
                        CgroupError::InvalidValue(format!("bad io.latency target `{v}`"))
                    })?);
                }
                _ => {
                    return Err(CgroupError::InvalidValue(format!(
                        "unknown io.latency field `{field}`"
                    )))
                }
            }
        }
        target
            .map(|target_us| IoLatency { target_us })
            .ok_or_else(|| CgroupError::InvalidValue("io.latency needs target=".into()))
    }
}

impl fmt::Display for IoLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "target={}", self.target_us)
    }
}

/// `io.weight` — the iocost absolute weight, 1..=10000 (default 100).
///
/// Grammar: `default <w>` and/or `MAJOR:MINOR <w>` per-device overrides.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoWeight {
    /// The default weight applied to all devices without an override.
    pub default: u32,
    /// Per-device overrides.
    pub per_dev: BTreeMap<DevNode, u32>,
}

impl Default for IoWeight {
    fn default() -> Self {
        IoWeight {
            default: Self::DEFAULT,
            per_dev: BTreeMap::new(),
        }
    }
}

impl IoWeight {
    /// Kernel default weight.
    pub const DEFAULT: u32 = 100;
    /// Minimum settable weight.
    pub const MIN: u32 = 1;
    /// Maximum settable weight.
    pub const MAX: u32 = 10_000;

    /// The weight in effect for `dev`.
    #[must_use]
    pub fn for_dev(&self, dev: DevNode) -> u32 {
        self.per_dev.get(&dev).copied().unwrap_or(self.default)
    }

    /// Parses the whole file value (possibly multiple lines).
    ///
    /// # Errors
    ///
    /// [`CgroupError::InvalidValue`] for weights outside `1..=10000` or a
    /// malformed line.
    pub fn parse(s: &str, max: u32) -> Result<Self, CgroupError> {
        let mut out = IoWeight::default();
        for line in s.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let (key, w) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| CgroupError::InvalidValue(format!("`{line}` is not KEY WEIGHT")))?;
            let w: u32 = w
                .trim()
                .parse()
                .map_err(|_| CgroupError::InvalidValue(format!("bad weight `{w}`")))?;
            if !(Self::MIN..=max).contains(&w) {
                return Err(CgroupError::InvalidValue(format!(
                    "weight {w} out of range 1..={max}"
                )));
            }
            if key == "default" {
                out.default = w;
            } else {
                out.per_dev.insert(key.parse()?, w);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for IoWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "default {}", self.default)?;
        for (dev, w) in &self.per_dev {
            write!(f, "\n{dev} {w}")?;
        }
        Ok(())
    }
}

/// `io.bfq.weight` — BFQ's absolute weight, 1..=1000 (default 100); same
/// file grammar as [`IoWeight`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfqWeight(pub IoWeight);

impl BfqWeight {
    /// Maximum settable BFQ weight.
    pub const MAX: u32 = 1_000;

    /// Parses the file value with BFQ's 1..=1000 range.
    ///
    /// # Errors
    ///
    /// See [`IoWeight::parse`].
    pub fn parse(s: &str) -> Result<Self, CgroupError> {
        IoWeight::parse(s, Self::MAX).map(BfqWeight)
    }

    /// The weight in effect for `dev`.
    #[must_use]
    pub fn for_dev(&self, dev: DevNode) -> u32 {
        self.0.for_dev(dev)
    }
}

impl fmt::Display for BfqWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Whether an `io.cost` parameter set is kernel-derived or user-provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostCtrl {
    /// Kernel defaults / auto mode.
    Auto,
    /// User-supplied parameters.
    User,
}

impl fmt::Display for CostCtrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CostCtrl::Auto => "auto",
            CostCtrl::User => "user",
        })
    }
}

/// `io.cost.model` — the linear cost model for one device (root only).
///
/// Grammar: `MAJOR:MINOR ctrl=auto|user [model=linear] rbps=… rseqiops=…
/// rrandiops=… wbps=… wseqiops=… wrandiops=…`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCostModel {
    /// auto or user.
    pub ctrl: CostCtrl,
    /// Max sequential read bytes/s.
    pub rbps: u64,
    /// Max sequential read IOs/s.
    pub rseqiops: u64,
    /// Max random read IOs/s.
    pub rrandiops: u64,
    /// Max sequential write bytes/s.
    pub wbps: u64,
    /// Max sequential write IOs/s.
    pub wseqiops: u64,
    /// Max random write IOs/s.
    pub wrandiops: u64,
}

impl IoCostModel {
    /// Parses the fields after the device key.
    ///
    /// # Errors
    ///
    /// [`CgroupError::InvalidValue`] on unknown keys, bad numbers, or any
    /// zero coefficient (the kernel rejects those too).
    pub fn parse_fields(s: &str) -> Result<Self, CgroupError> {
        let mut ctrl = CostCtrl::User;
        let mut vals: BTreeMap<&str, u64> = BTreeMap::new();
        for field in s.split_whitespace() {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| CgroupError::InvalidValue(format!("`{field}` is not key=value")))?;
            match k {
                "ctrl" => {
                    ctrl = match v {
                        "auto" => CostCtrl::Auto,
                        "user" => CostCtrl::User,
                        _ => return Err(CgroupError::InvalidValue(format!("bad ctrl `{v}`"))),
                    };
                }
                "model" => {
                    if v != "linear" {
                        return Err(CgroupError::InvalidValue(format!(
                            "only the linear model is supported, got `{v}`"
                        )));
                    }
                }
                "rbps" | "rseqiops" | "rrandiops" | "wbps" | "wseqiops" | "wrandiops" => {
                    let n: u64 = v
                        .parse()
                        .map_err(|_| CgroupError::InvalidValue(format!("bad {k} value `{v}`")))?;
                    if n == 0 {
                        return Err(CgroupError::InvalidValue(format!("{k} must be nonzero")));
                    }
                    vals.insert(k, n);
                }
                other => {
                    return Err(CgroupError::InvalidValue(format!(
                        "unknown io.cost.model key `{other}`"
                    )))
                }
            }
        }
        let get = |k: &str| {
            vals.get(k)
                .copied()
                .ok_or_else(|| CgroupError::InvalidValue(format!("io.cost.model missing {k}=")))
        };
        Ok(IoCostModel {
            ctrl,
            rbps: get("rbps")?,
            rseqiops: get("rseqiops")?,
            rrandiops: get("rrandiops")?,
            wbps: get("wbps")?,
            wseqiops: get("wseqiops")?,
            wrandiops: get("wrandiops")?,
        })
    }
}

impl fmt::Display for IoCostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ctrl={} model=linear rbps={} rseqiops={} rrandiops={} wbps={} wseqiops={} wrandiops={}",
            self.ctrl, self.rbps, self.rseqiops, self.rrandiops, self.wbps, self.wseqiops,
            self.wrandiops
        )
    }
}

/// `io.cost.qos` — when and how much iocost restrains groups (root only).
///
/// Grammar: `MAJOR:MINOR enable=0|1 ctrl=auto|user rpct=… rlat=… wpct=…
/// wlat=… min=… max=…`; `rpct`/`wpct` are latency percentiles, `rlat`/
/// `wlat` targets in microseconds, `min`/`max` the vrate scaling range in
/// percent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoCostQos {
    /// Controller enabled.
    pub enable: bool,
    /// auto or user.
    pub ctrl: CostCtrl,
    /// Read latency percentile (e.g. 95.0); 0 disables the read signal.
    pub rpct: f64,
    /// Read latency target, microseconds.
    pub rlat_us: u64,
    /// Write latency percentile; 0 disables the write signal.
    pub wpct: f64,
    /// Write latency target, microseconds.
    pub wlat_us: u64,
    /// Minimum vrate scaling, percent of the model speed.
    pub min_pct: f64,
    /// Maximum vrate scaling, percent of the model speed.
    pub max_pct: f64,
}

impl Default for IoCostQos {
    fn default() -> Self {
        // Kernel defaults: qos disabled, full-speed window.
        IoCostQos {
            enable: false,
            ctrl: CostCtrl::Auto,
            rpct: 0.0,
            rlat_us: 0,
            wpct: 0.0,
            wlat_us: 0,
            min_pct: 100.0,
            max_pct: 100.0,
        }
    }
}

impl IoCostQos {
    /// Parses the fields after the device key.
    ///
    /// # Errors
    ///
    /// [`CgroupError::InvalidValue`] on unknown keys, out-of-range
    /// percentages, or `min > max`.
    pub fn parse_fields(s: &str) -> Result<Self, CgroupError> {
        let mut q = IoCostQos::default();
        for field in s.split_whitespace() {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| CgroupError::InvalidValue(format!("`{field}` is not key=value")))?;
            let parse_f = |v: &str, k: &str| -> Result<f64, CgroupError> {
                v.parse()
                    .map_err(|_| CgroupError::InvalidValue(format!("bad {k} value `{v}`")))
            };
            match k {
                "enable" => q.enable = v == "1",
                "ctrl" => {
                    q.ctrl = match v {
                        "auto" => CostCtrl::Auto,
                        "user" => CostCtrl::User,
                        _ => return Err(CgroupError::InvalidValue(format!("bad ctrl `{v}`"))),
                    };
                }
                "rpct" => q.rpct = parse_f(v, k)?,
                "wpct" => q.wpct = parse_f(v, k)?,
                "rlat" => {
                    q.rlat_us = v
                        .parse()
                        .map_err(|_| CgroupError::InvalidValue(format!("bad rlat value `{v}`")))?;
                }
                "wlat" => {
                    q.wlat_us = v
                        .parse()
                        .map_err(|_| CgroupError::InvalidValue(format!("bad wlat value `{v}`")))?;
                }
                "min" => q.min_pct = parse_f(v, k)?,
                "max" => q.max_pct = parse_f(v, k)?,
                other => {
                    return Err(CgroupError::InvalidValue(format!(
                        "unknown io.cost.qos key `{other}`"
                    )))
                }
            }
        }
        for (name, pct) in [("rpct", q.rpct), ("wpct", q.wpct)] {
            if !(0.0..=100.0).contains(&pct) {
                return Err(CgroupError::InvalidValue(format!(
                    "{name} out of range: {pct}"
                )));
            }
        }
        if q.min_pct > q.max_pct {
            return Err(CgroupError::InvalidValue(format!(
                "min ({}) must not exceed max ({})",
                q.min_pct, q.max_pct
            )));
        }
        if !(1.0..=10_000.0).contains(&q.min_pct) || !(1.0..=10_000.0).contains(&q.max_pct) {
            return Err(CgroupError::InvalidValue(
                "min/max must be in 1..=10000 pct".into(),
            ));
        }
        Ok(q)
    }
}

impl fmt::Display for IoCostQos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "enable={} ctrl={} rpct={:.2} rlat={} wpct={:.2} wlat={} min={:.2} max={:.2}",
            u8::from(self.enable),
            self.ctrl,
            self.rpct,
            self.rlat_us,
            self.wpct,
            self.wlat_us,
            self.min_pct,
            self.max_pct
        )
    }
}

/// A parsed knob write: which file and its typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Knob {
    /// `io.max` for one device.
    Max(DevNode, IoMax),
    /// `io.latency` for one device.
    Latency(DevNode, IoLatency),
    /// `io.weight`.
    Weight(IoWeight),
    /// `io.bfq.weight`.
    BfqWeight(BfqWeight),
    /// `io.prio.class`.
    PrioClass(blkio::PrioClass),
    /// `io.cost.model` for one device (root only).
    CostModel(DevNode, IoCostModel),
    /// `io.cost.qos` for one device (root only).
    CostQos(DevNode, IoCostQos),
}

/// The knob file names, for dispatch and error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KnobKind {
    /// `io.max`
    Max,
    /// `io.latency`
    Latency,
    /// `io.weight`
    Weight,
    /// `io.bfq.weight`
    BfqWeight,
    /// `io.prio.class`
    PrioClass,
    /// `io.cost.model`
    CostModel,
    /// `io.cost.qos`
    CostQos,
}

impl KnobKind {
    /// The cgroupfs file name.
    #[must_use]
    pub const fn file_name(self) -> &'static str {
        match self {
            KnobKind::Max => "io.max",
            KnobKind::Latency => "io.latency",
            KnobKind::Weight => "io.weight",
            KnobKind::BfqWeight => "io.bfq.weight",
            KnobKind::PrioClass => "io.prio.class",
            KnobKind::CostModel => "io.cost.model",
            KnobKind::CostQos => "io.cost.qos",
        }
    }

    /// Parses a file name.
    ///
    /// # Errors
    ///
    /// [`CgroupError::NoSuchKnob`] for unknown names.
    pub fn from_file_name(name: &str) -> Result<Self, CgroupError> {
        Ok(match name {
            "io.max" => KnobKind::Max,
            "io.latency" => KnobKind::Latency,
            "io.weight" => KnobKind::Weight,
            "io.bfq.weight" => KnobKind::BfqWeight,
            "io.prio.class" => KnobKind::PrioClass,
            "io.cost.model" => KnobKind::CostModel,
            "io.cost.qos" => KnobKind::CostQos,
            other => return Err(CgroupError::NoSuchKnob(other.to_owned())),
        })
    }
}

impl Knob {
    /// Parses one knob write: the file name plus the written value, using
    /// the kernel grammar for that file.
    ///
    /// # Errors
    ///
    /// [`CgroupError::NoSuchKnob`] or [`CgroupError::InvalidValue`].
    pub fn parse(file: &str, value: &str) -> Result<Self, CgroupError> {
        let kind = KnobKind::from_file_name(file)?;
        let value = value.trim();
        let split_dev = |value: &str| -> Result<(DevNode, String), CgroupError> {
            let mut it = value.splitn(2, char::is_whitespace);
            let dev: DevNode = it.next().unwrap_or("").parse()?;
            Ok((dev, it.next().unwrap_or("").to_owned()))
        };
        Ok(match kind {
            KnobKind::Max => {
                let (dev, rest) = split_dev(value)?;
                Knob::Max(dev, IoMax::parse_fields(&rest)?)
            }
            KnobKind::Latency => {
                let (dev, rest) = split_dev(value)?;
                Knob::Latency(dev, IoLatency::parse_fields(&rest)?)
            }
            KnobKind::Weight => Knob::Weight(IoWeight::parse(value, IoWeight::MAX)?),
            KnobKind::BfqWeight => Knob::BfqWeight(BfqWeight::parse(value)?),
            KnobKind::PrioClass => Knob::PrioClass(
                blkio::PrioClass::parse(value)
                    .map_err(|t| CgroupError::InvalidValue(format!("bad prio class `{t}`")))?,
            ),
            KnobKind::CostModel => {
                let (dev, rest) = split_dev(value)?;
                Knob::CostModel(dev, IoCostModel::parse_fields(&rest)?)
            }
            KnobKind::CostQos => {
                let (dev, rest) = split_dev(value)?;
                Knob::CostQos(dev, IoCostQos::parse_fields(&rest)?)
            }
        })
    }

    /// Which file this knob belongs to.
    #[must_use]
    pub const fn kind(&self) -> KnobKind {
        match self {
            Knob::Max(..) => KnobKind::Max,
            Knob::Latency(..) => KnobKind::Latency,
            Knob::Weight(..) => KnobKind::Weight,
            Knob::BfqWeight(..) => KnobKind::BfqWeight,
            Knob::PrioClass(..) => KnobKind::PrioClass,
            Knob::CostModel(..) => KnobKind::CostModel,
            Knob::CostQos(..) => KnobKind::CostQos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devnode_roundtrip() {
        let d: DevNode = "259:7".parse().unwrap();
        assert_eq!(d, DevNode::nvme(7));
        assert_eq!(d.to_string(), "259:7");
        assert_eq!(d.nvme_index(), 7);
        assert!("2597".parse::<DevNode>().is_err());
        assert!("a:b".parse::<DevNode>().is_err());
    }

    #[test]
    fn io_max_parses_kernel_examples() {
        let m = IoMax::parse_fields("rbps=2097152 wbps=max riops=120 wiops=max").unwrap();
        assert_eq!(m.rbps, Some(2_097_152));
        assert_eq!(m.wbps, None);
        assert_eq!(m.riops, Some(120));
        assert_eq!(m.wiops, None);
        assert!(!m.is_unlimited());
    }

    #[test]
    fn io_max_partial_fields_default_to_max() {
        let m = IoMax::parse_fields("rbps=1000").unwrap();
        assert_eq!(m.rbps, Some(1000));
        assert!(m.wbps.is_none() && m.riops.is_none() && m.wiops.is_none());
        let empty = IoMax::parse_fields("").unwrap();
        assert!(empty.is_unlimited());
    }

    #[test]
    fn io_max_display_roundtrips() {
        let m = IoMax {
            rbps: Some(5),
            wbps: None,
            riops: None,
            wiops: Some(9),
        };
        let again = IoMax::parse_fields(&m.to_string()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn io_max_rejects_garbage() {
        assert!(IoMax::parse_fields("rbps").is_err());
        assert!(IoMax::parse_fields("zbps=12").is_err());
        assert!(IoMax::parse_fields("rbps=alot").is_err());
    }

    #[test]
    fn io_latency_parses() {
        let l = IoLatency::parse_fields("target=75").unwrap();
        assert_eq!(l.target_us, 75);
        assert_eq!(l.to_string(), "target=75");
        assert!(IoLatency::parse_fields("").is_err());
        assert!(IoLatency::parse_fields("target=abc").is_err());
        assert!(IoLatency::parse_fields("goal=10").is_err());
    }

    #[test]
    fn io_weight_default_and_overrides() {
        let w = IoWeight::parse("default 250\n259:0 1000", IoWeight::MAX).unwrap();
        assert_eq!(w.default, 250);
        assert_eq!(w.for_dev(DevNode::nvme(0)), 1000);
        assert_eq!(w.for_dev(DevNode::nvme(1)), 250);
        let rendered = w.to_string();
        let reparsed = IoWeight::parse(&rendered, IoWeight::MAX).unwrap();
        assert_eq!(w, reparsed);
    }

    #[test]
    fn io_weight_range_enforced() {
        assert!(IoWeight::parse("default 0", IoWeight::MAX).is_err());
        assert!(IoWeight::parse("default 10001", IoWeight::MAX).is_err());
        assert!(IoWeight::parse("default 10000", IoWeight::MAX).is_ok());
        // BFQ caps at 1000.
        assert!(BfqWeight::parse("default 1001").is_err());
        assert!(BfqWeight::parse("default 1000").is_ok());
    }

    #[test]
    fn cost_model_full_line() {
        let m = IoCostModel::parse_fields(
            "ctrl=user model=linear rbps=2464424576 rseqiops=97620 rrandiops=93364 \
             wbps=1186341888 wseqiops=25184 wrandiops=25184",
        )
        .unwrap();
        assert_eq!(m.ctrl, CostCtrl::User);
        assert_eq!(m.rbps, 2_464_424_576);
        assert_eq!(m.wrandiops, 25_184);
        let again = IoCostModel::parse_fields(&m.to_string()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn cost_model_requires_all_coefficients() {
        assert!(IoCostModel::parse_fields("ctrl=user rbps=1").is_err());
        assert!(IoCostModel::parse_fields(
            "rbps=1 rseqiops=1 rrandiops=1 wbps=1 wseqiops=1 wrandiops=0"
        )
        .is_err());
    }

    #[test]
    fn cost_qos_parses_and_validates() {
        let q = IoCostQos::parse_fields(
            "enable=1 ctrl=user rpct=95.00 rlat=100 wpct=95.00 wlat=500 min=50.00 max=150.00",
        )
        .unwrap();
        assert!(q.enable);
        assert_eq!(q.rlat_us, 100);
        assert!((q.min_pct - 50.0).abs() < 1e-9);
        let again = IoCostQos::parse_fields(&q.to_string()).unwrap();
        assert_eq!(q, again);
        assert!(IoCostQos::parse_fields("min=90 max=50").is_err());
        assert!(IoCostQos::parse_fields("rpct=150").is_err());
    }

    #[test]
    fn knob_parse_dispatches_by_file() {
        match Knob::parse("io.max", "259:0 rbps=1000").unwrap() {
            Knob::Max(dev, m) => {
                assert_eq!(dev, DevNode::nvme(0));
                assert_eq!(m.rbps, Some(1000));
            }
            other => panic!("wrong knob {other:?}"),
        }
        match Knob::parse("io.prio.class", "rt").unwrap() {
            Knob::PrioClass(p) => assert_eq!(p, blkio::PrioClass::Realtime),
            other => panic!("wrong knob {other:?}"),
        }
        assert!(matches!(
            Knob::parse("io.nonsense", "1"),
            Err(CgroupError::NoSuchKnob(_))
        ));
        assert_eq!(
            Knob::parse("io.latency", "259:0 target=75").unwrap().kind(),
            KnobKind::Latency
        );
    }

    #[test]
    fn knob_kind_file_names_roundtrip() {
        for kind in [
            KnobKind::Max,
            KnobKind::Latency,
            KnobKind::Weight,
            KnobKind::BfqWeight,
            KnobKind::PrioClass,
            KnobKind::CostModel,
            KnobKind::CostQos,
        ] {
            assert_eq!(KnobKind::from_file_name(kind.file_name()).unwrap(), kind);
        }
    }
}
