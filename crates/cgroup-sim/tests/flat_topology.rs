//! Property tests: the flattened topology view must agree with the
//! pointer-walk accessors on [`Hierarchy`] for arbitrary create/remove
//! sequences — including tombstoned slots, which stay addressable and
//! resolve to their own-knobs-only values.

use proptest::prelude::*;

use blkio::GroupId;
use cgroup_sim::{DevNode, Hierarchy};
use std::collections::HashSet;

/// SplitMix64 finalizer — decorrelates per-field draws from one seed.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Grows a hierarchy by replaying `ops`: each op either creates a group
/// under a random live management slot (enabling `+io` on a fraction so
/// trees get 3–4 levels deep), sets a knob, or removes a random empty
/// leaf (tombstoning its slot). Returns the hierarchy.
fn grow(ops: &[u64]) -> Hierarchy {
    let mut h = Hierarchy::new();
    let mut live: Vec<GroupId> = vec![Hierarchy::ROOT];
    for (i, &op) in ops.iter().enumerate() {
        let r = mix(op ^ i as u64);
        match r % 10 {
            // 60%: create a child somewhere.
            0..=5 => {
                let parent = live[(mix(r ^ 1) as usize) % live.len()];
                let name = format!("g{i}");
                if let Ok(id) = h.create(parent, &name) {
                    // Most non-leaf candidates become management groups
                    // so later creates can nest under them.
                    if !mix(r ^ 2).is_multiple_of(3) {
                        let _ = h.enable_io(id);
                    }
                    live.push(id);
                }
            }
            // 20%: write a knob on a random group (may fail placement
            // rules — that's fine, failures leave state untouched).
            6 | 7 => {
                let target = live[(mix(r ^ 3) as usize) % live.len()];
                match mix(r ^ 4) % 3 {
                    0 => {
                        let bps = 1_000_000 + mix(r ^ 5) % 1_000_000_000;
                        let _ = h.write(target, "io.max", &format!("259:0 rbps={bps}"));
                    }
                    1 => {
                        let us = 50 + mix(r ^ 6) % 10_000;
                        let _ = h.write(target, "io.latency", &format!("259:0 target={us}"));
                    }
                    _ => {
                        let w = 1 + mix(r ^ 7) % 10_000;
                        let _ = h.write(target, "io.weight", &format!("default {w}"));
                    }
                }
            }
            // 20%: remove a random group (only empty leaves succeed;
            // successes tombstone the slot).
            _ => {
                let target = live[(mix(r ^ 8) as usize) % live.len()];
                if h.remove(target).is_ok() {
                    live.retain(|&g| g != target);
                }
            }
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_view_matches_pointer_walks(
        ops in proptest::collection::vec(0u64..=u64::MAX, 5..60),
    ) {
        let h = grow(&ops);
        let flat = h.flatten();
        let dev = DevNode::nvme(0);
        prop_assert_eq!(flat.len(), h.len());

        let eff_max = flat.effective_io_max(&h, dev);
        let eff_lat = flat.effective_io_latency(&h, dev);
        let mult = flat.weight_multipliers(|g| h.io_weight(g, dev));

        for idx in 0..h.len() {
            let id = GroupId(idx);
            let g = h.group(id).unwrap();

            // Structure: parent, children, depth, path.
            prop_assert_eq!(flat.parent(id), g.parent());
            let flat_children: Vec<GroupId> = flat.children(id).collect();
            prop_assert_eq!(flat_children.as_slice(), g.children());
            let walk_depth = {
                let mut d = 0u32;
                let mut cur = g.parent();
                while let Some(p) = cur {
                    d += 1;
                    cur = h.group(p).unwrap().parent();
                }
                d
            };
            prop_assert_eq!(flat.depth(id), walk_depth);
            let walk_path = h.path(id).unwrap();
            prop_assert_eq!(flat.path(id), walk_path.as_str());
            let tombstoned = id != Hierarchy::ROOT && g.parent().is_none();
            prop_assert_eq!(flat.is_live(id), !tombstoned);
            let chain: Vec<GroupId> = flat.self_and_ancestors(id).collect();
            prop_assert_eq!(chain[0], id);
            prop_assert_eq!(chain.len() as u32, walk_depth + 1);

            // Effective knobs: bulk forward passes vs. per-id walks.
            let walk_max = h.io_max(id, dev);
            prop_assert_eq!(eff_max[idx].rbps, walk_max.rbps);
            prop_assert_eq!(eff_max[idx].wbps, walk_max.wbps);
            prop_assert_eq!(eff_max[idx].riops, walk_max.riops);
            prop_assert_eq!(eff_max[idx].wiops, walk_max.wiops);
            prop_assert_eq!(
                eff_lat[idx].map(|l| l.target_us),
                h.io_latency(id, dev).map(|l| l.target_us)
            );

            // Weight multiplier: product over proper ancestors below
            // the root of weight/100.
            let mut walk_mult = 1.0f64;
            let mut cur = g.parent();
            while let Some(p) = cur {
                if p != Hierarchy::ROOT {
                    walk_mult *= f64::from(h.io_weight(p, dev)) / 100.0;
                }
                cur = h.group(p).unwrap().parent();
            }
            prop_assert!(
                (mult[idx] - walk_mult).abs() <= 1e-12 * walk_mult.abs().max(1.0),
                "weight multiplier mismatch at {}: flat {} vs walk {}",
                idx, mult[idx], walk_mult
            );
        }
    }

    #[test]
    fn flat_hweight_matches_hierarchy_hweight(
        ops in proptest::collection::vec(0u64..=u64::MAX, 5..50),
        picks in proptest::collection::vec(0u64..=u64::MAX, 1..8),
    ) {
        let h = grow(&ops);
        let flat = h.flatten();
        let dev = DevNode::nvme(0);
        // Draw an active set from the live process-capable groups.
        let ids: Vec<GroupId> = (0..h.len()).map(GroupId).collect();
        let active: Vec<GroupId> = picks
            .iter()
            .map(|&p| ids[(mix(p) as usize) % ids.len()])
            .filter(|&g| flat.is_live(g))
            .collect();
        let active_set: HashSet<GroupId> = active.iter().copied().collect();
        let wf = |g: GroupId| h.io_weight(g, dev);
        for &id in &ids {
            let want = h.hweight(id, &active_set, wf);
            let got = flat.hweight(id, &active, wf);
            prop_assert!(
                (want - got).abs() <= 1e-12,
                "hweight mismatch for {:?}: hierarchy {} vs flat {}",
                id, want, got
            );
        }
    }
}
