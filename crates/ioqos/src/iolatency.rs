//! `io.latency` (blk-iolatency): reactive tail-latency protection.
//!
//! Mechanism, as described in the paper (§IV-B) and the kernel:
//! every 500 ms the controller compares each protected group's achieved
//! P90 completion latency against its target. If violated, every group
//! with a *higher* target (or no target — lower priority) has its
//! effective queue depth halved, at most once per window, down to 1.
//! While still violated at QD 1, a `use_delay` counter accrues on the
//! victims. When the target is met again, victims first drain
//! `use_delay` (one per window) and only then recover queue depth in
//! steps of `max_qd / 4`. With `max_qd = 1024` a full throttle-down
//! takes 10 windows ≈ 5 s — the paper's O10 burst finding.
//!
//! # Fleet-scale fast path
//!
//! Per-group state lives in dense [`GroupArena`]s, and two slot sets
//! keep periodic work proportional to groups that need attention:
//!
//! * `dirty` — groups away from their settled fixpoint (`effective_qd ==
//!   max_qd`, `use_delay == 0`, empty latency window). A clean window
//!   evaluation is a no-op for settled groups, so the walk visits only
//!   dirty members; a *violated* window walks every materialized group
//!   (victim selection is global by design).
//! * `backlogged` — groups with held requests, so the per-pump drain
//!   never touches idle tenants.

use std::collections::VecDeque;

use blkio::{GroupId, IoRequest};
use simcore::{SimDuration, SimTime};

use crate::arena::{GroupArena, SlotSet};
use crate::{QosController, SubmitOutcome};

/// Evaluation window (kernel: 500 ms).
const WINDOW: SimDuration = SimDuration::from_millis(500);
/// The percentile compared against the target (static, kernel: P90).
const PERCENTILE: f64 = 0.90;

#[derive(Debug)]
struct GroupState {
    inflight: u32,
    effective_qd: u32,
    use_delay: u32,
    held: VecDeque<IoRequest>,
    window_lat_ns: Vec<u64>,
}

impl GroupState {
    fn new(max_qd: u32) -> Self {
        GroupState {
            inflight: 0,
            effective_qd: max_qd,
            use_delay: 0,
            held: VecDeque::new(),
            window_lat_ns: Vec::new(),
        }
    }

    /// A settled group: nothing a clean window evaluation would change.
    fn at_fixpoint(&self, max_qd: u32) -> bool {
        self.effective_qd == max_qd && self.use_delay == 0 && self.window_lat_ns.is_empty()
    }
}

/// The `io.latency` controller for one device.
#[derive(Debug)]
pub struct IoLatencyController {
    max_qd: u32,
    targets: GroupArena<u64>,
    groups: GroupArena<GroupState>,
    /// Groups away from their fixpoint (see [`GroupState::at_fixpoint`]);
    /// the only groups a clean window evaluation needs to visit.
    dirty: SlotSet,
    /// Groups with held requests.
    backlogged: SlotSet,
    /// Total held requests across groups.
    held_total: usize,
    next_window_at: SimTime,
    /// Reused scratch for window walks (kept empty between calls).
    scratch_ids: Vec<GroupId>,
    /// Reused scratch for percentile sorts.
    scratch_lats: Vec<u64>,
}

impl IoLatencyController {
    /// Creates a controller for a device with queue limit `max_qd`
    /// (1024 on the paper's SSDs).
    ///
    /// # Panics
    ///
    /// Panics if `max_qd` is zero.
    #[must_use]
    pub fn new(max_qd: u32) -> Self {
        assert!(max_qd > 0, "max_qd must be positive");
        IoLatencyController {
            max_qd,
            targets: GroupArena::new(),
            groups: GroupArena::new(),
            dirty: SlotSet::new(),
            backlogged: SlotSet::new(),
            held_total: 0,
            next_window_at: SimTime::ZERO + WINDOW,
            scratch_ids: Vec::new(),
            scratch_lats: Vec::new(),
        }
    }

    /// Sets or clears a group's latency target in microseconds (a write
    /// to `io.latency`).
    pub fn set_target(&mut self, group: GroupId, target_us: Option<u64>) {
        match target_us {
            Some(t) => {
                self.targets.insert(group, t);
            }
            None => {
                self.targets.remove(group);
            }
        }
    }

    /// `true` once any target is configured (otherwise the controller is
    /// a no-op pass-through).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.targets.is_empty()
    }

    /// The current effective queue depth of a group (for reports/tests).
    #[must_use]
    pub fn effective_qd(&self, group: GroupId) -> u32 {
        self.groups
            .get(group)
            .map_or(self.max_qd, |g| g.effective_qd)
    }

    /// The current `use_delay` counter of a group.
    #[must_use]
    pub fn use_delay(&self, group: GroupId) -> u32 {
        self.groups.get(group).map_or(0, |g| g.use_delay)
    }

    /// Total held requests across groups.
    #[must_use]
    pub fn held_count(&self) -> usize {
        self.held_total
    }

    fn group_mut(&mut self, id: GroupId) -> &mut GroupState {
        let max_qd = self.max_qd;
        self.groups
            .get_or_insert_with(id, || GroupState::new(max_qd))
    }

    fn effective_target(&self, id: GroupId) -> u64 {
        self.targets.get(id).copied().unwrap_or(u64::MAX)
    }

    fn evaluate_window(&mut self) {
        // Which protected groups are violated this window? Only the
        // strictest violated target matters for victim selection.
        let mut strictest_violated: Option<u64> = None;
        for (g, &target_us) in self.targets.iter() {
            if let Some(state) = self.groups.get(g) {
                if state.window_lat_ns.is_empty() {
                    continue;
                }
                self.scratch_lats.clear();
                self.scratch_lats.extend_from_slice(&state.window_lat_ns);
                self.scratch_lats.sort_unstable();
                let lats = &self.scratch_lats;
                let idx =
                    ((lats.len() as f64 * PERCENTILE).ceil() as usize).clamp(1, lats.len()) - 1;
                let p90_us = lats[idx] / 1_000;
                if p90_us > target_us {
                    strictest_violated =
                        Some(strictest_violated.map_or(target_us, |t| t.min(target_us)));
                }
            }
        }
        let max_qd = self.max_qd;
        let mut ids = std::mem::take(&mut self.scratch_ids);
        if strictest_violated.is_some() {
            // Victim selection is global: every group with traffic or
            // configuration is (re)examined.
            ids.extend(self.groups.iter().map(|(id, _)| id));
        } else {
            // A clean window changes nothing for settled groups — walk
            // only the dirty ones, so thousands of idle tenants cost
            // nothing here.
            ids.extend(self.dirty.iter());
        }
        for &id in &ids {
            let my_target = self.effective_target(id);
            // A group is a victim if some *stricter* protected group is
            // violated.
            let victim_of_violation = strictest_violated.is_some_and(|t| my_target > t);
            let g = self
                .groups
                .get_mut(id)
                .expect("walked ids are materialized");
            if victim_of_violation {
                if g.effective_qd > 1 {
                    g.effective_qd = (g.effective_qd / 2).max(1);
                } else {
                    g.use_delay += 1;
                }
            } else if g.use_delay > 0 {
                g.use_delay -= 1;
            } else {
                g.effective_qd = (g.effective_qd + max_qd / 4).min(max_qd);
            }
            g.window_lat_ns.clear();
            if g.at_fixpoint(max_qd) {
                self.dirty.remove(id);
            } else {
                self.dirty.insert(id);
            }
        }
        ids.clear();
        self.scratch_ids = ids;
    }
}

impl QosController for IoLatencyController {
    fn on_submit(&mut self, req: IoRequest, _now: SimTime) -> SubmitOutcome {
        if !self.is_enabled() {
            return SubmitOutcome::Pass(req);
        }
        let g = self.group_mut(req.group);
        if g.held.is_empty() && g.inflight < g.effective_qd {
            g.inflight += 1;
            SubmitOutcome::Pass(req)
        } else {
            let group = req.group;
            g.held.push_back(req);
            self.held_total += 1;
            self.backlogged.insert(group);
            SubmitOutcome::Held
        }
    }

    fn on_device_complete(&mut self, req: &IoRequest, now: SimTime) {
        if !self.is_enabled() {
            return;
        }
        let lat = now.saturating_since(req.scheduled_at).as_nanos();
        let group = req.group;
        let g = self.group_mut(group);
        g.inflight = g.inflight.saturating_sub(1);
        g.window_lat_ns.push(lat);
        // A nonempty window needs clearing at the next evaluation.
        self.dirty.insert(group);
    }

    fn drain_released_into(&mut self, _now: SimTime, out: &mut Vec<IoRequest>) {
        if self.backlogged.is_empty() {
            return;
        }
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.extend(self.backlogged.iter());
        for &id in &ids {
            let g = self
                .groups
                .get_mut(id)
                .expect("backlogged members are materialized");
            while !g.held.is_empty() && g.inflight < g.effective_qd {
                let req = g.held.pop_front().expect("nonempty");
                self.held_total -= 1;
                g.inflight += 1;
                out.push(req);
            }
            if g.held.is_empty() {
                self.backlogged.remove(id);
            }
        }
        ids.clear();
        self.scratch_ids = ids;
    }

    fn next_event(&self, _now: SimTime) -> Option<SimTime> {
        self.is_enabled().then_some(self.next_window_at)
    }

    fn tick(&mut self, now: SimTime) {
        if !self.is_enabled() {
            return;
        }
        while self.next_window_at <= now {
            self.evaluate_window();
            self.next_window_at += WINDOW;
        }
    }

    fn submit_cpu_overhead(&self, _deep_queue: bool) -> SimDuration {
        SimDuration::from_nanos(150)
    }

    fn name(&self) -> &'static str {
        "io.latency"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::read4k;

    fn complete(ctl: &mut IoLatencyController, mut req: IoRequest, sched_at: SimTime, lat_us: u64) {
        req.scheduled_at = sched_at;
        let done = sched_at + SimDuration::from_micros(lat_us);
        ctl.on_device_complete(&req, done);
    }

    #[test]
    fn disabled_controller_passes_everything() {
        let mut c = IoLatencyController::new(1024);
        assert!(!c.is_enabled());
        for i in 0..2000 {
            let r = read4k(i, 1, SimTime::ZERO);
            assert!(matches!(
                c.on_submit(r, SimTime::ZERO),
                SubmitOutcome::Pass(_)
            ));
        }
        assert_eq!(c.next_event(SimTime::ZERO), None);
    }

    #[test]
    fn effective_qd_gates_inflight() {
        let mut c = IoLatencyController::new(4);
        c.set_target(GroupId(1), Some(100));
        // Group 2 has no target; cap is max_qd = 4 until throttled.
        let mut passed = 0;
        for i in 0..6 {
            if matches!(
                c.on_submit(read4k(i, 2, SimTime::ZERO), SimTime::ZERO),
                SubmitOutcome::Pass(_)
            ) {
                passed += 1;
            }
        }
        assert_eq!(passed, 4);
        // A completion frees one slot.
        let r = read4k(99, 2, SimTime::ZERO);
        complete(&mut c, r, SimTime::ZERO, 10);
        assert_eq!(c.drain_released(SimTime::ZERO).len(), 1);
    }

    #[test]
    fn violation_halves_victims_once_per_window() {
        let mut c = IoLatencyController::new(1024);
        c.set_target(GroupId(1), Some(100));
        // Protected group misses its target badly this window.
        for i in 0..20 {
            let r = read4k(i, 1, SimTime::ZERO);
            c.on_submit(r.clone(), SimTime::ZERO);
            complete(&mut c, r, SimTime::ZERO, 500); // 500 us >> 100 us
        }
        // Unprotected group has traffic too.
        let r = read4k(100, 2, SimTime::ZERO);
        c.on_submit(r, SimTime::ZERO);
        let w1 = SimTime::ZERO + WINDOW;
        c.tick(w1);
        assert_eq!(c.effective_qd(GroupId(2)), 512, "halved once");
        assert_eq!(
            c.effective_qd(GroupId(1)),
            1024,
            "protected group untouched"
        );
    }

    #[test]
    fn ten_windows_throttle_to_one() {
        let mut c = IoLatencyController::new(1024);
        c.set_target(GroupId(1), Some(100));
        // Group 2 must exist (has had traffic).
        c.on_submit(read4k(0, 2, SimTime::ZERO), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for w in 0..10 {
            // Keep violating.
            for i in 0..10 {
                let r = read4k(1000 + w * 100 + i, 1, now);
                c.on_submit(r.clone(), now);
                complete(&mut c, r, now, 900);
            }
            now += WINDOW;
            c.tick(now);
        }
        assert_eq!(c.effective_qd(GroupId(2)), 1);
        // Continued violation accrues use_delay.
        for i in 0..10 {
            let r = read4k(9000 + i, 1, now);
            c.on_submit(r.clone(), now);
            complete(&mut c, r, now, 900);
        }
        now += WINDOW;
        c.tick(now);
        assert_eq!(c.use_delay(GroupId(2)), 1);
    }

    #[test]
    fn recovery_waits_for_use_delay_then_steps_up() {
        let mut c = IoLatencyController::new(1024);
        c.set_target(GroupId(1), Some(100));
        c.on_submit(read4k(0, 2, SimTime::ZERO), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // Throttle to QD 1 and accrue use_delay = 2.
        for w in 0..12 {
            for i in 0..10 {
                let r = read4k(100 + w * 100 + i, 1, now);
                c.on_submit(r.clone(), now);
                complete(&mut c, r, now, 900);
            }
            now += WINDOW;
            c.tick(now);
        }
        assert_eq!(c.effective_qd(GroupId(2)), 1);
        assert_eq!(c.use_delay(GroupId(2)), 2);
        // Now the target is met (fast IO). First two windows drain
        // use_delay; the third adds max_qd/4.
        for expect_qd in [1, 1, 257] {
            for i in 0..10 {
                let r = read4k(5000 + u64::from(expect_qd) * 100 + i, 1, now);
                c.on_submit(r.clone(), now);
                complete(&mut c, r, now, 10);
            }
            now += WINDOW;
            c.tick(now);
            assert_eq!(c.effective_qd(GroupId(2)), expect_qd);
        }
    }

    #[test]
    fn stricter_targets_throttle_looser_protected_groups() {
        let mut c = IoLatencyController::new(64);
        c.set_target(GroupId(1), Some(50)); // strict
        c.set_target(GroupId(2), Some(5_000)); // loose
                                               // Strict group violated.
        for i in 0..10 {
            let r = read4k(i, 1, SimTime::ZERO);
            c.on_submit(r.clone(), SimTime::ZERO);
            complete(&mut c, r, SimTime::ZERO, 400);
        }
        // Loose group active.
        c.on_submit(read4k(50, 2, SimTime::ZERO), SimTime::ZERO);
        c.tick(SimTime::ZERO + WINDOW);
        assert_eq!(
            c.effective_qd(GroupId(2)),
            32,
            "looser protected group is a victim"
        );
        assert_eq!(c.effective_qd(GroupId(1)), 64);
    }

    #[test]
    fn no_violation_means_no_throttling() {
        let mut c = IoLatencyController::new(1024);
        c.set_target(GroupId(1), Some(1_000));
        for i in 0..20 {
            let r = read4k(i, 1, SimTime::ZERO);
            c.on_submit(r.clone(), SimTime::ZERO);
            complete(&mut c, r, SimTime::ZERO, 100); // well under target
        }
        c.on_submit(read4k(100, 2, SimTime::ZERO), SimTime::ZERO);
        c.tick(SimTime::ZERO + WINDOW);
        assert_eq!(c.effective_qd(GroupId(2)), 1024);
    }

    #[test]
    fn held_requests_release_in_order_as_slots_free() {
        let mut c = IoLatencyController::new(2);
        c.set_target(GroupId(1), Some(100));
        let mut reqs = Vec::new();
        for i in 0..4 {
            let r = read4k(i, 2, SimTime::ZERO);
            reqs.push(r.clone());
            c.on_submit(r, SimTime::ZERO);
        }
        // Two in flight, two held.
        complete(&mut c, reqs[0].clone(), SimTime::ZERO, 10);
        let rel = c.drain_released(SimTime::ZERO);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].id, 2);
    }

    #[test]
    fn settled_groups_leave_the_dirty_set() {
        let mut c = IoLatencyController::new(1024);
        c.set_target(GroupId(1), Some(100));
        // Traffic in several groups, all meeting targets.
        for g in 1..=6usize {
            let r = read4k(g as u64, g, SimTime::ZERO);
            c.on_submit(r.clone(), SimTime::ZERO);
            complete(&mut c, r, SimTime::ZERO, 10);
        }
        assert_eq!(c.dirty.len(), 6, "nonempty windows are dirty");
        c.tick(SimTime::ZERO + WINDOW);
        assert_eq!(
            c.dirty.len(),
            0,
            "clean evaluation settles every group back to its fixpoint"
        );
        // A violation drags everyone back in.
        for i in 0..10 {
            let r = read4k(100 + i, 1, SimTime::ZERO + WINDOW);
            c.on_submit(r.clone(), SimTime::ZERO + WINDOW);
            complete(&mut c, r, SimTime::ZERO + WINDOW, 900);
        }
        c.tick(SimTime::ZERO + WINDOW + WINDOW);
        // Victims (groups 2..=6) halved → dirty again.
        assert!(c.dirty.len() >= 5, "victims are dirty: {}", c.dirty.len());
        assert_eq!(c.effective_qd(GroupId(2)), 512);
    }
}
