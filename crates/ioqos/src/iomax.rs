//! `io.max` (blk-throttle): static token-bucket limiting.

use std::collections::VecDeque;

use blkio::{GroupId, IoRequest};
use cgroup_sim::IoMax;
use simcore::trace::{self, TraceEvent, TraceKind};
use simcore::{SimDuration, SimTime, TokenBucket};

use crate::arena::{GroupArena, SlotSet};
use crate::{QosController, SubmitOutcome};

/// Burst window the buckets accumulate (kernel `throtl_slice`-like).
const BURST_SECS: f64 = 0.05;

/// Minimum burst allowance of a byte-rate bucket.
pub const MIN_BURST_BYTES: f64 = 256.0 * 1024.0;

/// Minimum burst allowance of an IOPS bucket.
pub const MIN_BURST_IOS: f64 = 1.0;

/// The burst capacity (in tokens) a bucket with the given rate gets.
/// Exported so the trace-invariant checker replays the exact budget the
/// throttler enforces.
#[must_use]
pub fn burst_tokens(rate: u64, min_burst: f64) -> f64 {
    let r = rate.max(1) as f64;
    (r * BURST_SECS).max(min_burst)
}

#[derive(Debug)]
struct GroupThrottle {
    limits: IoMax,
    rbps: Option<TokenBucket>,
    wbps: Option<TokenBucket>,
    riops: Option<TokenBucket>,
    wiops: Option<TokenBucket>,
    /// Held reads and writes queue independently, as in blk-throttle.
    held_r: VecDeque<IoRequest>,
    held_w: VecDeque<IoRequest>,
}

impl GroupThrottle {
    fn new(limits: IoMax) -> Self {
        let bucket = |rate: Option<u64>, min_burst: f64| {
            rate.map(|r| TokenBucket::new(r.max(1) as f64, burst_tokens(r, min_burst)))
        };
        GroupThrottle {
            rbps: bucket(limits.rbps, MIN_BURST_BYTES),
            wbps: bucket(limits.wbps, MIN_BURST_BYTES),
            riops: bucket(limits.riops, MIN_BURST_IOS),
            wiops: bucket(limits.wiops, MIN_BURST_IOS),
            limits,
            held_r: VecDeque::new(),
            held_w: VecDeque::new(),
        }
    }

    fn availability(&self, req: &IoRequest, now: SimTime) -> SimTime {
        let (bps, iops) = if req.op.is_read() {
            (&self.rbps, &self.riops)
        } else {
            (&self.wbps, &self.wiops)
        };
        let mut at = now;
        if let Some(b) = bps {
            at = at.max(b.available_at(f64::from(req.len), now));
        }
        if let Some(b) = iops {
            at = at.max(b.available_at(1.0, now));
        }
        at
    }

    /// Consumes tokens for `req` or reports when they will be available.
    fn try_take(&mut self, req: &IoRequest, now: SimTime) -> Result<(), SimTime> {
        let at = self.availability(req, now);
        if at > now {
            return Err(at);
        }
        let (bps, iops) = if req.op.is_read() {
            (&mut self.rbps, &mut self.riops)
        } else {
            (&mut self.wbps, &mut self.wiops)
        };
        // Availability was verified above up to nanosecond rounding;
        // take_debt tolerates the sub-token residue.
        if let Some(b) = bps {
            b.take_debt(f64::from(req.len), now);
        }
        if let Some(b) = iops {
            b.take_debt(1.0, now);
        }
        Ok(())
    }

    /// Earliest instant at which either direction's head can go.
    fn next_ready_at(&self, now: SimTime) -> Option<SimTime> {
        let r = self.held_r.front().map(|req| self.availability(req, now));
        let w = self.held_w.front().map(|req| self.availability(req, now));
        match (r, w) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// The `io.max` throttler for one device.
///
/// Groups without limits pass through untouched. Limited groups are
/// throttled by independent read/write byte and IOPS token buckets;
/// requests queue FIFO per group while tokens are short. The mechanism
/// is static: it never redistributes unused budget (not
/// work-conserving, O8) and provides no prioritization.
#[derive(Debug, Default)]
pub struct IoMaxThrottler {
    /// Only limited groups occupy a slot; everyone else passes through.
    groups: GroupArena<GroupThrottle>,
    /// Groups with held requests — the only slots the per-pump drain and
    /// `next_event` walks touch.
    backlogged: SlotSet,
    /// Total held requests across groups.
    held_total: usize,
}

impl IoMaxThrottler {
    /// Creates a throttler with no limits configured.
    #[must_use]
    pub fn new() -> Self {
        IoMaxThrottler::default()
    }

    /// Sets (or clears, when unlimited) a group's limits, as a write to
    /// that group's `io.max` file would.
    pub fn set_limits(&mut self, group: GroupId, limits: IoMax) {
        if limits.is_unlimited() {
            if let Some(g) = self.groups.remove(group) {
                self.held_total -= g.held_r.len() + g.held_w.len();
                self.backlogged.remove(group);
            }
        } else {
            match self.groups.get_mut(group) {
                // Preserve held requests across reconfiguration.
                Some(g) => {
                    let held_r = std::mem::take(&mut g.held_r);
                    let held_w = std::mem::take(&mut g.held_w);
                    let mut fresh = GroupThrottle::new(limits);
                    fresh.held_r = held_r;
                    fresh.held_w = held_w;
                    *g = fresh;
                }
                None => {
                    self.groups.insert(group, GroupThrottle::new(limits));
                }
            }
        }
    }

    /// The configured limits for a group (unlimited if never set).
    #[must_use]
    pub fn limits(&self, group: GroupId) -> IoMax {
        self.groups
            .get(group)
            .map_or_else(IoMax::default, |g| g.limits)
    }

    /// Number of requests currently held.
    #[must_use]
    pub fn held_count(&self) -> usize {
        self.held_total
    }
}

impl QosController for IoMaxThrottler {
    fn on_submit(&mut self, req: IoRequest, now: SimTime) -> SubmitOutcome {
        let Some(g) = self.groups.get_mut(req.group) else {
            return SubmitOutcome::Pass(req);
        };
        let queue_empty = if req.op.is_read() {
            g.held_r.is_empty()
        } else {
            g.held_w.is_empty()
        };
        if queue_empty && g.try_take(&req, now).is_ok() {
            trace::record_with(|| iomax_pass_event(&req, now));
            SubmitOutcome::Pass(req)
        } else {
            let group = req.group;
            if req.op.is_read() {
                g.held_r.push_back(req);
            } else {
                g.held_w.push_back(req);
            }
            self.held_total += 1;
            self.backlogged.insert(group);
            SubmitOutcome::Held
        }
    }

    fn on_device_complete(&mut self, _req: &IoRequest, _now: SimTime) {}

    fn drain_released_into(&mut self, now: SimTime, out: &mut Vec<IoRequest>) {
        if self.backlogged.is_empty() {
            return;
        }
        // Walk only groups with held requests, in ascending slot order
        // (deterministic by construction).
        let mut cursor = 0usize;
        // SlotSet iteration cannot outlive the `get_mut` borrow, so step
        // the membership manually: find the next backlogged slot at or
        // after `cursor`.
        while let Some(id) = self.backlogged.iter().find(|g| g.index() >= cursor) {
            cursor = id.index() + 1;
            let g = self
                .groups
                .get_mut(id)
                .expect("backlogged members are limited");
            for dir in 0..2 {
                loop {
                    let head = if dir == 0 {
                        g.held_r.front()
                    } else {
                        g.held_w.front()
                    };
                    let Some(head) = head else { break };
                    let head = head.clone();
                    if g.try_take(&head, now).is_ok() {
                        let q = if dir == 0 {
                            &mut g.held_r
                        } else {
                            &mut g.held_w
                        };
                        let released = q.pop_front().expect("head exists");
                        self.held_total -= 1;
                        trace::record_with(|| iomax_pass_event(&released, now));
                        out.push(released);
                    } else {
                        break;
                    }
                }
            }
            if g.held_r.is_empty() && g.held_w.is_empty() {
                self.backlogged.remove(id);
            }
        }
    }

    fn next_event(&self, now: SimTime) -> Option<SimTime> {
        self.backlogged
            .iter()
            .filter_map(|id| self.groups.get(id).and_then(|g| g.next_ready_at(now)))
            .min()
    }

    fn tick(&mut self, _now: SimTime) {}

    fn submit_cpu_overhead(&self, deep_queue: bool) -> SimDuration {
        // blk-throttle walks the hierarchy per bio; batch submitters pay
        // for every one of them.
        if deep_queue {
            SimDuration::from_nanos(600)
        } else {
            SimDuration::from_nanos(250)
        }
    }

    fn name(&self) -> &'static str {
        "io.max"
    }
}

/// A request consumed `io.max` tokens at `now` (trace probe).
fn iomax_pass_event(req: &IoRequest, now: SimTime) -> TraceEvent {
    TraceEvent::new(
        now.as_nanos(),
        TraceKind::IoMaxPass,
        req.id,
        req.group.0 as u32,
        req.dev.0 as u32,
        u64::from(req.len),
        u64::from(req.op.is_write()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{read4k, req};
    use blkio::IoOp;

    fn limits_rbps(rbps: u64) -> IoMax {
        IoMax {
            rbps: Some(rbps),
            ..Default::default()
        }
    }

    #[test]
    fn unlimited_groups_pass_through() {
        let mut t = IoMaxThrottler::new();
        let r = read4k(0, 1, SimTime::ZERO);
        assert!(matches!(
            t.on_submit(r, SimTime::ZERO),
            SubmitOutcome::Pass(_)
        ));
        assert_eq!(t.held_count(), 0);
        assert_eq!(t.next_event(SimTime::ZERO), None);
    }

    #[test]
    fn sustained_rate_matches_limit() {
        let mut t = IoMaxThrottler::new();
        // 1 MiB/s read limit, 4 KiB requests → 256 IOPS sustained.
        t.set_limits(GroupId(1), limits_rbps(1 << 20));
        let mut passed = 0u64;
        let mut id = 0;
        let horizon = SimTime::from_secs(2);
        let mut now = SimTime::ZERO;
        while now < horizon {
            match t.on_submit(read4k(id, 1, now), now) {
                SubmitOutcome::Pass(_) => passed += 1,
                SubmitOutcome::Held => {
                    // Wait and drain.
                    now += SimDuration::from_micros(500);
                    passed += t.drain_released(now).len() as u64;
                }
            }
            id += 1;
        }
        let bytes = passed * 4096;
        let rate = bytes as f64 / 2.0;
        // Allow the initial burst allowance on top.
        assert!(
            (0.9e6..1.35e6).contains(&rate),
            "sustained rate {rate} B/s for a 1 MiB/s limit"
        );
    }

    #[test]
    fn fifo_within_group_is_preserved() {
        let mut t = IoMaxThrottler::new();
        t.set_limits(GroupId(1), limits_rbps(4096)); // 1 request/s
                                                     // Exhaust the burst.
        let mut now = SimTime::ZERO;
        while let SubmitOutcome::Pass(_) = t.on_submit(read4k(900, 1, now), now) {}
        // Two more held requests.
        assert!(matches!(
            t.on_submit(read4k(1, 1, now), now),
            SubmitOutcome::Held
        ));
        // Drain far in the future: order must be 900 (the first held), 1.
        now = SimTime::from_secs(10);
        let drained = t.drain_released(now);
        assert!(drained.len() >= 2);
        assert_eq!(drained[0].id, 900);
        assert_eq!(drained[1].id, 1);
    }

    #[test]
    fn read_and_write_buckets_are_independent() {
        let mut t = IoMaxThrottler::new();
        t.set_limits(
            GroupId(1),
            IoMax {
                rbps: Some(4096),
                wbps: None,
                ..Default::default()
            },
        );
        // Reads throttle after the burst...
        let now = SimTime::ZERO;
        while let SubmitOutcome::Pass(_) = t.on_submit(read4k(0, 1, now), now) {}
        // ...but writes still pass.
        let w = req(1, 1, IoOp::Write, 4096, now);
        assert!(matches!(t.on_submit(w, now), SubmitOutcome::Pass(_)));
    }

    #[test]
    fn iops_limit_counts_requests_not_bytes() {
        let mut t = IoMaxThrottler::new();
        t.set_limits(
            GroupId(1),
            IoMax {
                riops: Some(10),
                ..Default::default()
            },
        );
        // Burst capacity is max(10 * 0.05, 1) = 1... times: capacity =
        // (10*0.05).max(1.0) = 1 token. First passes, second held.
        let big = req(0, 1, IoOp::Read, 1 << 20, SimTime::ZERO);
        assert!(matches!(
            t.on_submit(big, SimTime::ZERO),
            SubmitOutcome::Pass(_)
        ));
        let big2 = req(1, 1, IoOp::Read, 1 << 20, SimTime::ZERO);
        assert!(matches!(
            t.on_submit(big2, SimTime::ZERO),
            SubmitOutcome::Held
        ));
        // 100 ms later one more token accrued.
        let drained = t.drain_released(SimTime::from_millis(100));
        assert_eq!(drained.len(), 1);
    }

    #[test]
    fn reconfiguring_preserves_held_requests() {
        let mut t = IoMaxThrottler::new();
        t.set_limits(GroupId(1), limits_rbps(4096));
        let mut now = SimTime::ZERO;
        while let SubmitOutcome::Pass(_) = t.on_submit(read4k(7, 1, now), now) {}
        assert!(t.held_count() > 0);
        // Raise the limit dramatically; held request drains immediately.
        t.set_limits(GroupId(1), limits_rbps(1 << 30));
        now += SimDuration::from_micros(1);
        assert!(!t.drain_released(now).is_empty());
    }

    #[test]
    fn clearing_limits_removes_group() {
        let mut t = IoMaxThrottler::new();
        t.set_limits(GroupId(1), limits_rbps(1));
        t.set_limits(GroupId(1), IoMax::default());
        assert!(t.limits(GroupId(1)).is_unlimited());
        let r = read4k(0, 1, SimTime::ZERO);
        assert!(matches!(
            t.on_submit(r, SimTime::ZERO),
            SubmitOutcome::Pass(_)
        ));
    }

    #[test]
    fn next_event_fires_while_held() {
        let mut t = IoMaxThrottler::new();
        t.set_limits(GroupId(1), limits_rbps(4096));
        let now = SimTime::ZERO;
        while let SubmitOutcome::Pass(_) = t.on_submit(read4k(0, 1, now), now) {}
        assert!(t.next_event(now).is_some());
    }
}
