//! Dense per-group state storage for the QoS controllers.
//!
//! Cgroup ids are already dense indices (`Hierarchy` hands them out
//! sequentially and never reuses a slot, see `cgroup-sim`), so a
//! controller's per-group state does not need a hash map: a slab vector
//! indexed by [`GroupSlot`] turns every lookup on the submit/complete
//! path into an array index — the same move the nvme-sim request arena
//! made for in-service commands. Two containers cover every controller:
//!
//! * [`GroupArena`] — auto-growing `Vec<Option<T>>` keyed by group slot,
//!   with an occupied counter so `len()` stays O(1). Iteration order is
//!   ascending slot order by construction, which makes controller walks
//!   deterministic without collect-and-sort.
//! * [`SlotSet`] — a word-packed bitmap of group slots with O(1)
//!   insert/remove/contains and ascending-order iteration. Controllers
//!   keep *active* / *backlogged* membership here so periodic work walks
//!   only the groups that need attention, not every group ever seen.

use blkio::GroupId;

/// A compact index for one cgroup inside a controller's arenas.
///
/// Group ids are dense (`GroupId(n)` is the n-th created group), so the
/// slot *is* the id's index; the newtype only documents intent where a
/// raw index crosses an API boundary.
pub type GroupSlot = u32;

/// Converts a group id to its arena slot.
#[must_use]
#[inline]
pub fn slot_of(group: GroupId) -> GroupSlot {
    group.index() as GroupSlot
}

/// Dense per-group storage: `Vec<Option<T>>` indexed by group slot.
#[derive(Debug, Clone)]
pub struct GroupArena<T> {
    slots: Vec<Option<T>>,
    occupied: usize,
}

impl<T> Default for GroupArena<T> {
    fn default() -> Self {
        GroupArena {
            slots: Vec::new(),
            occupied: 0,
        }
    }
}

impl<T> GroupArena<T> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        GroupArena::default()
    }

    /// Number of occupied slots (groups with materialized state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no group has materialized state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The group's state, if materialized.
    #[must_use]
    #[inline]
    pub fn get(&self, group: GroupId) -> Option<&T> {
        self.slots.get(group.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the group's state, if materialized.
    #[inline]
    pub fn get_mut(&mut self, group: GroupId) -> Option<&mut T> {
        self.slots.get_mut(group.index()).and_then(Option::as_mut)
    }

    /// Whether the group has materialized state.
    #[must_use]
    #[inline]
    pub fn contains(&self, group: GroupId) -> bool {
        self.get(group).is_some()
    }

    /// Returns the group's state, materializing it with `make` on first
    /// contact (the arena analogue of `HashMap::entry().or_insert_with`).
    pub fn get_or_insert_with(&mut self, group: GroupId, make: impl FnOnce() -> T) -> &mut T {
        let idx = group.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let slot = &mut self.slots[idx];
        if slot.is_none() {
            *slot = Some(make());
            self.occupied += 1;
        }
        slot.as_mut().expect("just materialized")
    }

    /// Inserts (or replaces) the group's state, returning the previous
    /// value if the slot was occupied.
    pub fn insert(&mut self, group: GroupId, value: T) -> Option<T> {
        let idx = group.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            self.occupied += 1;
        }
        prev
    }

    /// Removes and returns the group's state.
    pub fn remove(&mut self, group: GroupId) -> Option<T> {
        let prev = self.slots.get_mut(group.index()).and_then(Option::take);
        if prev.is_some() {
            self.occupied -= 1;
        }
        prev
    }

    /// Iterates occupied slots in ascending group order.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (GroupId(i), v)))
    }

    /// Iterates occupied slots mutably, in ascending group order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (GroupId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (GroupId(i), v)))
    }
}

/// A set of group slots as a packed bitmap.
///
/// Membership tests and updates are O(1); iteration visits members in
/// ascending slot order scanning one 64-bit word at a time, so a sparse
/// set over thousands of slots costs a few dozen word reads.
#[derive(Debug, Clone, Default)]
pub struct SlotSet {
    words: Vec<u64>,
    len: usize,
}

impl SlotSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        SlotSet::default()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `group` is a member.
    #[must_use]
    #[inline]
    pub fn contains(&self, group: GroupId) -> bool {
        let idx = group.index();
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Adds `group`; returns true if it was not already a member.
    pub fn insert(&mut self, group: GroupId) -> bool {
        let idx = group.index();
        let word = idx / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (idx % 64);
        let fresh = self.words[word] & bit == 0;
        if fresh {
            self.words[word] |= bit;
            self.len += 1;
        }
        fresh
    }

    /// Removes `group`; returns true if it was a member.
    pub fn remove(&mut self, group: GroupId) -> bool {
        let idx = group.index();
        let Some(w) = self.words.get_mut(idx / 64) else {
            return false;
        };
        let bit = 1u64 << (idx % 64);
        let present = *w & bit != 0;
        if present {
            *w &= !bit;
            self.len -= 1;
        }
        present
    }

    /// Removes all members (keeps capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates members in ascending slot order.
    pub fn iter(&self) -> SlotSetIter<'_> {
        SlotSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending-order iterator over a [`SlotSet`].
#[derive(Debug)]
pub struct SlotSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SlotSetIter<'_> {
    type Item = GroupId;

    fn next(&mut self) -> Option<GroupId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(GroupId(self.word_idx * 64 + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_materializes_once_and_counts() {
        let mut a: GroupArena<u32> = GroupArena::new();
        assert!(a.is_empty());
        *a.get_or_insert_with(GroupId(5), || 7) += 1;
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(GroupId(5)), Some(&8));
        // Second contact reuses the slot.
        *a.get_or_insert_with(GroupId(5), || 100) += 1;
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(GroupId(5)), Some(&9));
        assert!(!a.contains(GroupId(4)));
        assert_eq!(a.get(GroupId(999)), None);
    }

    #[test]
    fn arena_insert_remove_roundtrip() {
        let mut a: GroupArena<&str> = GroupArena::new();
        assert_eq!(a.insert(GroupId(2), "x"), None);
        assert_eq!(a.insert(GroupId(2), "y"), Some("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(GroupId(2)), Some("y"));
        assert_eq!(a.remove(GroupId(2)), None);
        assert!(a.is_empty());
    }

    #[test]
    fn arena_iterates_in_ascending_order() {
        let mut a: GroupArena<u32> = GroupArena::new();
        for g in [9usize, 1, 64, 3] {
            a.insert(GroupId(g), g as u32);
        }
        let order: Vec<usize> = a.iter().map(|(g, _)| g.index()).collect();
        assert_eq!(order, vec![1, 3, 9, 64]);
    }

    #[test]
    fn slot_set_basic_ops() {
        let mut s = SlotSet::new();
        assert!(s.insert(GroupId(0)));
        assert!(s.insert(GroupId(63)));
        assert!(s.insert(GroupId(64)));
        assert!(s.insert(GroupId(1000)));
        assert!(!s.insert(GroupId(64)), "double insert");
        assert_eq!(s.len(), 4);
        assert!(s.contains(GroupId(63)));
        assert!(!s.contains(GroupId(62)));
        assert!(s.remove(GroupId(63)));
        assert!(!s.remove(GroupId(63)));
        assert_eq!(s.len(), 3);
        let members: Vec<usize> = s.iter().map(GroupId::index).collect();
        assert_eq!(members, vec![0, 64, 1000]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn slot_set_iterates_sparse_ascending() {
        let mut s = SlotSet::new();
        let mut expect: Vec<usize> = (0..4096).filter(|i| i % 97 == 3).collect();
        for &i in expect.iter().rev() {
            s.insert(GroupId(i));
        }
        expect.sort_unstable();
        let got: Vec<usize> = s.iter().map(GroupId::index).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn slot_conversion_is_the_index() {
        assert_eq!(slot_of(GroupId(17)), 17);
    }
}
