//! `io.cost` + `io.weight` (blk-iocost): model-based virtual-time control.
//!
//! The controller prices every I/O with the linear device model
//! (`io.cost.model`), exactly like the kernel derives its coefficients:
//!
//! ```text
//! page_coef(read)   = VTIME / (rbps / 4096)          per 4 KiB page
//! io_coef(randread) = VTIME / rrandiops − page_coef  per I/O
//! abs_cost          = io_coef + pages × page_coef
//! ```
//!
//! so a 4 KiB random read costs exactly `VTIME / rrandiops` and the sum of
//! dispatched costs can never exceed the modelled device speed times
//! `vrate`. Each group pays `abs_cost / hweight` of virtual time, where
//! `hweight` is its weight share among *currently active* groups — this
//! is the donation/work-conservation mechanism: a group alone on the
//! device has `hweight = 1` and runs at full modelled speed.
//!
//! The QoS loop (`io.cost.qos`) measures read/write completion-latency
//! percentiles each period and moves the global `vrate` within
//! `[min, max]` percent: congestion (missed latency targets) slows
//! everyone down proportionally; clean periods speed everyone up. This
//! is why io.cost responds to priority bursts in milliseconds (O10) and
//! why its configuration bounds achievable bandwidth (O3).
//!
//! # Fleet-scale fast path
//!
//! Per-group state lives in dense [`GroupArena`]s (group ids are dense
//! slab indices), and the controller maintains two slot sets so periodic
//! work is O(active), not O(every group ever seen):
//!
//! * `active` — a conservative superset of the groups whose activity
//!   predicate (`active_until ≥ now ∨ held ≠ ∅ ∨ inflight > 0`) holds.
//!   Membership is added on submit and pruned only in `adjust_vrate`
//!   after the per-period `spent` reset, which preserves the invariant
//!   that non-members have `spent_in_period == 0`.
//! * `backlogged` — groups with held requests (`⊆ active`), so drain
//!   and `next_event` walk only groups that can actually release.
//!
//! `hweight` values are memoized per group behind an `epoch` counter
//! (bumped whenever any hweight input changes: weights, usage EMAs,
//! active-set membership, a held queue flipping empty↔nonempty) plus a
//! `valid_until` horizon (the earliest `active_until` of any row member,
//! after which time alone can change row membership). A stale entry
//! falls back to a full recompute over the active set — exactly the
//! value the pre-cache controller produced, so output bytes are
//! unchanged; the cache only skips redundant recomputation.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use blkio::{AccessPattern, GroupId, IoOp, IoRequest};
use cgroup_sim::{IoCostModel, IoCostQos};
use serde::{Deserialize, Serialize};
use simcore::trace::{self, TraceEvent, TraceKind};
use simcore::{SimDuration, SimTime};

use crate::arena::{GroupArena, SlotSet};
use crate::{QosController, SubmitOutcome};

/// A group's vtime advanced to `vtime` charging `abs` for `req` (probe).
fn vtime_event(req: &IoRequest, now: SimTime, vtime: f64, abs: f64) -> TraceEvent {
    TraceEvent::new(
        now.as_nanos(),
        TraceKind::VtimeAdvance,
        req.id,
        req.group.0 as u32,
        req.dev.0 as u32,
        vtime.to_bits(),
        abs.to_bits(),
    )
}

/// Configuration of one device's iocost instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoCostConfig {
    /// The linear cost model (root `io.cost.model`).
    pub model: IoCostModel,
    /// The QoS parameters (root `io.cost.qos`).
    pub qos: IoCostQos,
    /// Controller period (kernel adjusts within 1–10 ms; default 5 ms).
    pub period: SimDuration,
    /// Dispatch margin as a fraction of one period's virtual time.
    pub margin_frac: f64,
}

impl IoCostConfig {
    /// Creates a config with kernel-like period and margin.
    #[must_use]
    pub fn new(model: IoCostModel, qos: IoCostQos) -> Self {
        IoCostConfig {
            model,
            qos,
            period: SimDuration::from_millis(5),
            margin_frac: 0.35,
        }
    }
}

#[derive(Debug)]
struct GroupCost {
    vtime: f64,
    inflight: u32,
    /// Held requests with their *absolute* model cost; the hweight
    /// division happens at release time so share changes (donation)
    /// apply to queued requests too.
    held: VecDeque<(IoRequest, f64)>,
    active_until: SimTime,
    /// Virtual time charged during the current period.
    spent_in_period: f64,
    /// Smoothed fraction of its entitlement the group actually uses;
    /// scales its weight in `hweight` (the donation mechanism: an
    /// underusing group cedes share to backlogged groups).
    usage: f64,
    /// Memoized hweight (interior-mutable: `hweight` is called from
    /// `&self` paths like `next_event`). Valid while the controller
    /// epoch matches and `now ≤ hw_valid_until`.
    hw_value: Cell<f64>,
    hw_epoch: Cell<u64>,
    hw_valid_until: Cell<SimTime>,
}

impl Default for GroupCost {
    fn default() -> Self {
        GroupCost {
            vtime: 0.0,
            inflight: 0,
            held: VecDeque::new(),
            active_until: SimTime::ZERO,
            spent_in_period: 0.0,
            usage: 1.0,
            hw_value: Cell::new(0.0),
            hw_epoch: Cell::new(u64::MAX),
            hw_valid_until: Cell::new(SimTime::ZERO),
        }
    }
}

/// How long a group stays "active" for hweight purposes after its last
/// submission.
const ACTIVE_WINDOW: SimDuration = SimDuration::from_millis(100);

/// The `io.cost` controller for one device.
#[derive(Debug)]
pub struct IoCostController {
    config: IoCostConfig,
    weights: GroupArena<u32>,
    groups: GroupArena<GroupCost>,
    /// Conservative superset of groups whose activity predicate holds
    /// (pruned each period in `adjust_vrate`).
    active: SlotSet,
    /// Groups with a nonempty held queue (always a subset of `active`).
    backlogged: SlotSet,
    /// Total held requests across groups (kept in sync on push/pop).
    held_total: usize,
    /// Bumped whenever any input of `hweight` changes; invalidates all
    /// memoized hweights at once.
    epoch: u64,
    vrate: f64,
    vbase: f64,
    tbase: SimTime,
    next_tick: SimTime,
    window_rlat_ns: Vec<u64>,
    window_wlat_ns: Vec<u64>,
    /// Reused scratch for drain/adjust walks (kept empty between calls).
    scratch_ids: Vec<GroupId>,
    /// Reused scratch for hweight row builds (interior-mutable because
    /// `hweight` serves `&self` callers).
    hw_rows: RefCell<Vec<(GroupId, f64, f64, bool)>>,
}

impl IoCostController {
    /// Creates a controller; `vrate` starts at the QoS maximum.
    #[must_use]
    pub fn new(config: IoCostConfig) -> Self {
        let vrate = (config.qos.max_pct / 100.0).max(0.01);
        IoCostController {
            next_tick: SimTime::ZERO + config.period,
            config,
            weights: GroupArena::new(),
            groups: GroupArena::new(),
            active: SlotSet::new(),
            backlogged: SlotSet::new(),
            held_total: 0,
            epoch: 0,
            vrate,
            vbase: 0.0,
            tbase: SimTime::ZERO,
            window_rlat_ns: Vec::new(),
            window_wlat_ns: Vec::new(),
            scratch_ids: Vec::new(),
            hw_rows: RefCell::new(Vec::new()),
        }
    }

    /// Sets a group's absolute weight (`io.weight`, 1..=10000).
    pub fn set_weight(&mut self, group: GroupId, weight: u32) {
        self.weights.insert(group, weight.clamp(1, 10_000));
        self.epoch += 1;
    }

    /// The group's absolute weight (default 100).
    #[must_use]
    pub fn weight(&self, group: GroupId) -> u32 {
        self.weights.get(group).copied().unwrap_or(100)
    }

    /// The current global vrate multiplier.
    #[must_use]
    pub fn vrate(&self) -> f64 {
        self.vrate
    }

    /// Total held requests.
    #[must_use]
    pub fn held_count(&self) -> usize {
        self.held_total
    }

    /// A group's held-queue length (state inspection for tests).
    #[cfg(test)]
    fn held_len(&self, group: GroupId) -> usize {
        self.groups.get(group).map_or(0, |g| g.held.len())
    }

    fn vnow(&self, now: SimTime) -> f64 {
        self.vbase + now.saturating_since(self.tbase).as_nanos() as f64 * self.vrate
    }

    fn margin_v(&self) -> f64 {
        self.config.period.as_nanos() as f64 * self.config.margin_frac
    }

    /// Absolute cost of a request in virtual nanoseconds (device time at
    /// modelled full speed).
    #[must_use]
    pub fn abs_cost(&self, op: IoOp, pattern: AccessPattern, len: u32) -> f64 {
        let m = &self.config.model;
        let (bps, iops) = match (op, pattern) {
            (IoOp::Read, AccessPattern::Sequential) => (m.rbps, m.rseqiops),
            (IoOp::Read, AccessPattern::Random) => (m.rbps, m.rrandiops),
            (IoOp::Write, AccessPattern::Sequential) => (m.wbps, m.wseqiops),
            (IoOp::Write, AccessPattern::Random) => (m.wbps, m.wrandiops),
        };
        let page_coef = 4096.0 * 1e9 / bps as f64;
        let io_coef = (1e9 / iops as f64 - page_coef).max(0.0);
        let pages = (f64::from(len) / 4096.0).ceil().max(1.0);
        io_coef + pages * page_coef
    }

    /// Current in-use hierarchical weight share of `group` among active
    /// groups, after donation (kernel `hweight_inuse` semantics): each
    /// group's *nominal* share is its weight fraction; a group that only
    /// uses part of its entitlement keeps `nominal × usage`, and the
    /// pooled surplus is re-distributed to groups that want more
    /// (backlogged or fully-using), proportionally to their nominal
    /// weights. A group alone — or the only backlogged one — therefore
    /// converges to the full device speed (work conservation, O9).
    ///
    /// Serves from the per-group memo when the controller epoch and the
    /// time horizon still hold; otherwise recomputes over the active set
    /// and refreshes the memo.
    fn hweight(&self, group: GroupId, now: SimTime) -> f64 {
        if let Some(g) = self.groups.get(group) {
            if g.hw_epoch.get() == self.epoch && now <= g.hw_valid_until.get() {
                return g.hw_value.get();
            }
        }
        let (value, valid_until) = self.hweight_compute(group, now);
        if let Some(g) = self.groups.get(group) {
            g.hw_value.set(value);
            g.hw_epoch.set(self.epoch);
            g.hw_valid_until.set(valid_until);
        }
        value
    }

    /// Full hweight recomputation over the active set; returns the value
    /// and the horizon up to which it stays valid at the current epoch
    /// (the earliest `active_until` among row members — past it a member
    /// can lapse out of the rows without any epoch bump).
    fn hweight_compute(&self, group: GroupId, now: SimTime) -> (f64, SimTime) {
        const USAGE_FLOOR: f64 = 0.02;
        const WANTS_MORE: f64 = 0.9;
        // (id, nominal weight, usage, wants_more)
        let mut rows = self.hw_rows.borrow_mut();
        rows.clear();
        let mut seen = false;
        let mut valid_until = SimTime::MAX;
        for id in self.active.iter() {
            let g = self
                .groups
                .get(id)
                .expect("active members are materialized");
            if id == group || g.active_until >= now || !g.held.is_empty() || g.inflight > 0 {
                // A group asking right now always wants more.
                let wants = id == group || !g.held.is_empty() || g.usage >= WANTS_MORE;
                rows.push((id, f64::from(self.weight(id)), g.usage, wants));
                seen |= id == group;
                valid_until = valid_until.min(g.active_until);
            }
        }
        if !seen {
            if let Some(g) = self.groups.get(group) {
                // Materialized but lapsed out of the active set: its own
                // row is pinned by `id == group`, historical usage kept.
                rows.push((group, f64::from(self.weight(group)), g.usage, true));
                valid_until = valid_until.min(g.active_until);
            } else {
                // First contact: nominal share, full usage.
                rows.push((group, f64::from(self.weight(group)), 1.0, true));
            }
        }
        let total_w: f64 = rows.iter().map(|r| r.1).sum();
        let mut inuse: f64 = 0.0;
        let mut mine = 0.0;
        let mut wants_w = 0.0;
        for &(id, w, usage, wants) in rows.iter() {
            let nominal = w / total_w;
            let used = nominal * usage.clamp(USAGE_FLOOR, 1.0);
            inuse += used;
            if wants {
                wants_w += w;
            }
            if id == group {
                mine = used;
            }
        }
        let surplus = (1.0 - inuse).max(0.0);
        if wants_w > 0.0 {
            // The caller is always in the wants set (see above).
            mine += surplus * f64::from(self.weight(group)) / wants_w;
        }
        (mine.clamp(1e-6, 1.0), valid_until)
    }

    fn adjust_vrate(&mut self, now: SimTime) {
        let qos = self.config.qos;
        let min = qos.min_pct / 100.0;
        let max = qos.max_pct / 100.0;
        let mut missed = false;
        let mut measured = false;
        let mut check = |window: &mut Vec<u64>, pct: f64, target_us: u64| {
            if pct <= 0.0 || target_us == 0 || window.is_empty() {
                window.clear();
                return;
            }
            measured = true;
            window.sort_unstable();
            let idx =
                ((window.len() as f64 * pct / 100.0).ceil() as usize).clamp(1, window.len()) - 1;
            if window[idx] / 1_000 > target_us {
                missed = true;
            }
            window.clear();
        };
        if qos.enable {
            check(&mut self.window_rlat_ns, qos.rpct, qos.rlat_us);
            check(&mut self.window_wlat_ns, qos.wpct, qos.wlat_us);
        } else {
            self.window_rlat_ns.clear();
            self.window_wlat_ns.clear();
        }
        // Donation bookkeeping: how much of its entitlement did each
        // group use this period? Only active-set members can have spent
        // anything (non-members were pruned *after* their reset below,
        // so their `spent_in_period` is already zero), which keeps this
        // walk O(active), not O(every group ever seen).
        let entitlement = self.config.period.as_nanos() as f64 * self.vrate;
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.extend(self.active.iter());
        for &id in &ids {
            let g = self
                .groups
                .get_mut(id)
                .expect("active members are materialized");
            if g.active_until >= now || !g.held.is_empty() || g.inflight > 0 {
                let sample = (g.spent_in_period / entitlement).clamp(0.0, 1.0);
                g.usage = 0.5 * g.usage + 0.5 * sample;
            } else {
                // Predicate lapsed: drop from the active set so future
                // ticks and hweight row builds skip this group.
                self.active.remove(id);
            }
            g.spent_in_period = 0.0;
        }
        ids.clear();
        self.scratch_ids = ids;
        // Usage EMAs (and possibly membership) moved.
        self.epoch += 1;
        // Settle the vtime baseline before changing the rate.
        self.vbase = self.vnow(now);
        self.tbase = now;
        if qos.enable && measured {
            if missed {
                self.vrate = (self.vrate * 0.85).max(min);
            } else {
                self.vrate = (self.vrate * 1.05).min(max);
            }
        } else {
            self.vrate = self.vrate.clamp(min, max);
        }
    }
}

impl QosController for IoCostController {
    fn on_submit(&mut self, req: IoRequest, now: SimTime) -> SubmitOutcome {
        let abs = self.abs_cost(req.op, req.pattern, req.len);
        // Priced against the pre-contact state, like the kernel charges
        // before linking the iocg in.
        let charge = abs / self.hweight(req.group, now);
        let vnow = self.vnow(now);
        let margin = self.margin_v();
        let newly_active = self.active.insert(req.group);
        let g = self
            .groups
            .get_or_insert_with(req.group, GroupCost::default);
        let was_idle = g.inflight == 0 && g.held.is_empty();
        // A lapsed group re-entering the rows changes everyone's share.
        if newly_active || (was_idle && g.active_until < now) {
            self.epoch += 1;
        }
        g.active_until = now + ACTIVE_WINDOW;
        if was_idle {
            // No banking: an idle group resumes near the global clock.
            g.vtime = g.vtime.max(vnow - margin);
        }
        if g.held.is_empty() && g.vtime + charge <= vnow + margin {
            g.vtime += charge;
            g.spent_in_period += charge;
            g.inflight += 1;
            let vtime = g.vtime;
            trace::record_with(|| vtime_event(&req, now, vtime, abs));
            SubmitOutcome::Pass(req)
        } else {
            if g.held.is_empty() {
                // The group's "wants more" flag flips on.
                self.backlogged.insert(req.group);
                self.epoch += 1;
            }
            g.held.push_back((req, abs));
            self.held_total += 1;
            SubmitOutcome::Held
        }
    }

    fn on_device_complete(&mut self, req: &IoRequest, now: SimTime) {
        // QoS latency includes time held by the controller itself
        // (rq-wait semantics): once iocost throttles, waits blow past
        // the target and vrate stays pinned at min — the persistent
        // bandwidth reduction of Fig. 5a / Fig. 2g.
        let lat = now.saturating_since(req.submitted_at).as_nanos();
        if req.op.is_read() {
            self.window_rlat_ns.push(lat);
        } else {
            self.window_wlat_ns.push(lat);
        }
        if let Some(g) = self.groups.get_mut(req.group) {
            // No epoch bump: a completion can only lapse a group out of
            // the hweight rows when its `active_until` is already past,
            // and every memo containing such a member carried a
            // `valid_until ≤ active_until` and has expired on its own.
            g.inflight = g.inflight.saturating_sub(1);
        }
    }

    fn drain_released_into(&mut self, now: SimTime, out: &mut Vec<IoRequest>) {
        let vnow = self.vnow(now);
        let margin = self.margin_v();
        let mut ids = std::mem::take(&mut self.scratch_ids);
        // Arena/slot order is ascending group order by construction —
        // deterministic without collect-and-sort.
        ids.extend(self.backlogged.iter());
        for &id in &ids {
            // Shares move with donation; price each head at the current
            // hweight, not the submit-time one.
            let hw = self.hweight(id, now);
            let g = self
                .groups
                .get_mut(id)
                .expect("backlogged members are materialized");
            while let Some((_, abs)) = g.held.front() {
                let charge = abs / hw;
                if g.vtime + charge <= vnow + margin {
                    let (req, abs) = g.held.pop_front().expect("nonempty");
                    self.held_total -= 1;
                    g.vtime += charge;
                    g.spent_in_period += charge;
                    g.inflight += 1;
                    let vtime = g.vtime;
                    trace::record_with(|| vtime_event(&req, now, vtime, abs));
                    out.push(req);
                } else {
                    break;
                }
            }
            if g.held.is_empty() {
                // The group's "wants more" flag flips off.
                self.backlogged.remove(id);
                self.epoch += 1;
            }
        }
        ids.clear();
        self.scratch_ids = ids;
    }

    fn next_event(&self, now: SimTime) -> Option<SimTime> {
        let mut earliest = self.next_tick;
        // Earliest hold release across backlogged groups (estimated at
        // the current share; the periodic tick re-evaluates as shares
        // move).
        for id in self.backlogged.iter() {
            let g = self
                .groups
                .get(id)
                .expect("backlogged members are materialized");
            if let Some((_, abs)) = g.held.front() {
                let charge = abs / self.hweight(id, now);
                let needed_v = g.vtime + charge - self.margin_v();
                let dv = needed_v - self.vbase;
                let t = if dv <= 0.0 {
                    now
                } else {
                    self.tbase + SimDuration::from_nanos((dv / self.vrate).ceil() as u64)
                };
                earliest = earliest.min(t.max(now));
            }
        }
        Some(earliest)
    }

    fn tick(&mut self, now: SimTime) {
        while self.next_tick <= now {
            let at = self.next_tick;
            self.adjust_vrate(at);
            self.next_tick += self.config.period;
        }
    }

    fn submit_cpu_overhead(&self, deep_queue: bool) -> SimDuration {
        // Per-cpu vtime caches amortize well for deep-queue submitters;
        // shallow (QD-1) submitters serialize on the vtime lock, whose
        // contention grows with the number of active groups — the source
        // of io.cost's latency overhead past CPU saturation (O1).
        let n = self.groups.len() as u64;
        if deep_queue {
            SimDuration::from_nanos(250 + 8 * n)
        } else {
            SimDuration::from_nanos(900 + 90 * n)
        }
    }

    fn name(&self) -> &'static str {
        "io.cost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{read4k, req};

    fn model_1gib() -> IoCostModel {
        // A simple model: 1 GiB/s sequential everything, 100k rand IOPS,
        // 200k seq IOPS, symmetric.
        IoCostModel {
            ctrl: cgroup_sim::CostCtrl::User,
            rbps: 1 << 30,
            rseqiops: 200_000,
            rrandiops: 100_000,
            wbps: 1 << 30,
            wseqiops: 200_000,
            wrandiops: 100_000,
        }
    }

    fn fixed_cfg() -> IoCostConfig {
        IoCostConfig::new(model_1gib(), IoCostQos::default())
    }

    #[test]
    fn four_k_rand_read_costs_exactly_one_over_iops() {
        let c = IoCostController::new(fixed_cfg());
        let cost = c.abs_cost(IoOp::Read, AccessPattern::Random, 4096);
        assert!(
            (cost - 10_000.0).abs() < 1.0,
            "cost {cost} ns for 100k IOPS"
        );
    }

    #[test]
    fn large_requests_pay_page_costs() {
        let c = IoCostController::new(fixed_cfg());
        let small = c.abs_cost(IoOp::Read, AccessPattern::Sequential, 4096);
        let large = c.abs_cost(IoOp::Read, AccessPattern::Sequential, 256 * 1024);
        assert!(large > 10.0 * small, "small {small} large {large}");
        // 256 KiB at 1 GiB/s ≈ 238 µs of pure page cost.
        assert!((200_000.0..300_000.0).contains(&large), "large {large}");
    }

    #[test]
    fn dispatch_rate_is_bounded_by_model() {
        let mut c = IoCostController::new(fixed_cfg());
        // Pure 4 KiB random reads from one group, offered aggressively.
        let mut passed = 0u64;
        let mut id = 0;
        let horizon = SimTime::from_millis(500);
        let mut now = SimTime::ZERO;
        while now < horizon {
            match c.on_submit(read4k(id, 1, now), now) {
                SubmitOutcome::Pass(r) => {
                    passed += 1;
                    c.on_device_complete(&r, now);
                }
                SubmitOutcome::Held => {
                    now += SimDuration::from_micros(100);
                    for r in c.drain_released(now) {
                        passed += 1;
                        c.on_device_complete(&r, now);
                    }
                }
            }
            id += 1;
        }
        let iops = passed as f64 / 0.5;
        // Model says 100k rand read IOPS; margin allows slight overshoot.
        assert!((90_000.0..115_000.0).contains(&iops), "iops {iops}");
    }

    #[test]
    fn lone_group_gets_full_speed_regardless_of_weight() {
        let mut c = IoCostController::new(fixed_cfg());
        c.set_weight(GroupId(1), 1); // tiny weight, but alone
        let mut passed = 0u64;
        let mut id = 0;
        let mut now = SimTime::ZERO;
        while now < SimTime::from_millis(200) {
            match c.on_submit(read4k(id, 1, now), now) {
                SubmitOutcome::Pass(r) => {
                    passed += 1;
                    c.on_device_complete(&r, now);
                }
                SubmitOutcome::Held => {
                    now += SimDuration::from_micros(100);
                    for r in c.drain_released(now) {
                        passed += 1;
                        c.on_device_complete(&r, now);
                    }
                }
            }
            id += 1;
        }
        let iops = passed as f64 / 0.2;
        assert!(iops > 85_000.0, "work conservation: lone group iops {iops}");
    }

    #[test]
    fn weighted_groups_share_proportionally() {
        let mut c = IoCostController::new(fixed_cfg());
        c.set_weight(GroupId(1), 300);
        c.set_weight(GroupId(2), 100);
        let mut counts = [0u64; 2];
        let mut id = 0;
        let mut now = SimTime::ZERO;
        while now < SimTime::from_millis(500) {
            now += SimDuration::from_micros(50);
            for r in c.drain_released(now) {
                counts[r.group.index() - 1] += 1;
                c.on_device_complete(&r, now);
            }
            // Keep both groups backlogged; count immediate passes too.
            for g in [1usize, 2] {
                loop {
                    let pending = c.held_len(GroupId(g));
                    if pending >= 4 {
                        break;
                    }
                    match c.on_submit(read4k(id, g, now), now) {
                        SubmitOutcome::Pass(r) => {
                            counts[r.group.index() - 1] += 1;
                            c.on_device_complete(&r, now);
                        }
                        SubmitOutcome::Held => {}
                    }
                    id += 1;
                }
            }
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (2.5..3.5).contains(&ratio),
            "ratio {ratio}, counts {counts:?}"
        );
    }

    #[test]
    fn idle_group_does_not_bank_vtime() {
        let mut c = IoCostController::new(fixed_cfg());
        // Group 2 is busy for a while.
        let mut id = 0;
        let mut now = SimTime::ZERO;
        while now < SimTime::from_millis(100) {
            if let SubmitOutcome::Pass(r) = c.on_submit(read4k(id, 2, now), now) {
                c.on_device_complete(&r, now);
            }
            id += 1;
            now += SimDuration::from_micros(20);
        }
        // Group 1 wakes after 100 ms idle; it must not burst far beyond
        // the margin.
        let mut burst = 0;
        while let SubmitOutcome::Pass(_) = c.on_submit(read4k(id, 1, now), now) {
            burst += 1;
            id += 1;
            assert!(burst < 10_000, "unbounded burst");
        }
        // Margin is 35% of 5 ms = 1.75 ms of vtime; at ~20 µs per rand
        // read with hweight 0.5 → at most ~175 requests, not thousands.
        assert!(burst < 400, "burst {burst}");
    }

    #[test]
    fn qos_violation_drives_vrate_to_min() {
        let qos = IoCostQos {
            enable: true,
            ctrl: cgroup_sim::CostCtrl::User,
            rpct: 95.0,
            rlat_us: 100,
            wpct: 0.0,
            wlat_us: 0,
            min_pct: 50.0,
            max_pct: 150.0,
        };
        let mut c = IoCostController::new(IoCostConfig::new(model_1gib(), qos));
        assert!((c.vrate() - 1.5).abs() < 1e-9, "starts at max");
        let mut now = SimTime::ZERO;
        for round in 0..40 {
            // Slow completions: 1 ms ≫ 100 µs target.
            for i in 0..20 {
                let mut r = read4k(round * 100 + i, 1, now);
                r.submitted_at = now;
                c.on_device_complete(&r, now + SimDuration::from_millis(1));
            }
            now += SimDuration::from_millis(5);
            c.tick(now);
        }
        assert!(
            (c.vrate() - 0.5).abs() < 1e-9,
            "vrate {} should hit min",
            c.vrate()
        );
        // Recovery: fast completions push vrate back to max.
        for round in 0..60 {
            for i in 0..20 {
                let mut r = read4k(10_000 + round * 100 + i, 1, now);
                r.submitted_at = now;
                c.on_device_complete(&r, now + SimDuration::from_micros(50));
            }
            now += SimDuration::from_millis(5);
            c.tick(now);
        }
        assert!(
            (c.vrate() - 1.5).abs() < 1e-9,
            "vrate {} should recover",
            c.vrate()
        );
    }

    #[test]
    fn disabled_qos_keeps_vrate_fixed() {
        let mut c = IoCostController::new(fixed_cfg());
        let v0 = c.vrate();
        let mut now = SimTime::ZERO;
        for i in 0..20 {
            let mut r = read4k(i, 1, now);
            r.submitted_at = now;
            c.on_device_complete(&r, now + SimDuration::from_millis(10));
            now += SimDuration::from_millis(5);
            c.tick(now);
        }
        assert_eq!(c.vrate(), v0);
    }

    #[test]
    fn writes_cost_more_when_model_says_so() {
        let mut model = model_1gib();
        model.wrandiops = 25_000; // 4x more expensive than reads
        let c = IoCostController::new(IoCostConfig::new(model, IoCostQos::default()));
        let r = c.abs_cost(IoOp::Read, AccessPattern::Random, 4096);
        let w = c.abs_cost(IoOp::Write, AccessPattern::Random, 4096);
        assert!((w / r - 4.0).abs() < 0.1, "write/read cost ratio {}", w / r);
    }

    #[test]
    fn next_event_includes_hold_release() {
        let mut c = IoCostController::new(fixed_cfg());
        let mut id = 0;
        // Saturate until a request is held.
        while let SubmitOutcome::Pass(_) = c.on_submit(read4k(id, 1, SimTime::ZERO), SimTime::ZERO)
        {
            id += 1;
        }
        let ev = c.next_event(SimTime::ZERO).expect("tick or release");
        assert!(ev <= SimTime::ZERO + SimDuration::from_millis(5));
        // The release must eventually happen.
        let released = c.drain_released(ev + SimDuration::from_millis(1));
        assert!(!released.is_empty() || c.held_count() > 0);
    }

    #[test]
    fn donation_gives_surplus_to_backlogged_group() {
        // A has weight 10000 but issues only ~10k IOPS; B (weight 100)
        // is backlogged. After usage converges, B must receive nearly
        // the whole modelled device speed (work conservation, O9).
        let mut c = IoCostController::new(fixed_cfg());
        c.set_weight(GroupId(1), 10_000);
        c.set_weight(GroupId(2), 100);
        let mut id = 0;
        let mut now = SimTime::ZERO;
        let mut b_done = 0u64;
        let horizon = SimTime::from_millis(500);
        let mut next_a = SimTime::ZERO;
        while now < horizon {
            now += SimDuration::from_micros(50);
            // A: one request every 100 us (10k IOPS demand).
            if now >= next_a {
                if let SubmitOutcome::Pass(r) = c.on_submit(read4k(id, 1, now), now) {
                    c.on_device_complete(&r, now);
                }
                id += 1;
                next_a = now + SimDuration::from_micros(100);
            }
            // B: backlogged (keep 4 held).
            loop {
                let pending = c.held_len(GroupId(2));
                if pending >= 4 {
                    break;
                }
                match c.on_submit(read4k(id, 2, now), now) {
                    SubmitOutcome::Pass(r) => {
                        b_done += 1;
                        c.on_device_complete(&r, now);
                    }
                    SubmitOutcome::Held => {}
                }
                id += 1;
            }
            for r in c.drain_released(now) {
                if r.group == GroupId(2) {
                    b_done += 1;
                }
                c.on_device_complete(&r, now);
            }
            c.tick(now);
        }
        // Steady-state check over the second half only.
        let b_iops = b_done as f64 / 0.5;
        // Model speed is 100k rand IOPS; A uses ~10k; B should get the
        // lion's share of the remaining ~90k.
        assert!(b_iops > 60_000.0, "backlogged group got only {b_iops} IOPS");
    }

    #[test]
    fn weight_is_clamped() {
        let mut c = IoCostController::new(fixed_cfg());
        c.set_weight(GroupId(1), 0);
        assert_eq!(c.weight(GroupId(1)), 1);
        c.set_weight(GroupId(1), 20_000);
        assert_eq!(c.weight(GroupId(1)), 10_000);
        let _ = req(0, 1, IoOp::Read, 4096, SimTime::ZERO);
    }

    #[test]
    fn drain_releases_in_ascending_group_order() {
        // Backlog three groups in shuffled submission order, then let
        // everything release at once: the drain must surface requests in
        // ascending group order (arena/slot order by construction), FIFO
        // within each group.
        let mut c = IoCostController::new(fixed_cfg());
        let mut id = 0;
        // Saturate group 5 first, then 1, then 3, leaving ≥2 held each.
        for g in [5usize, 1, 3] {
            let mut held = 0;
            while held < 2 {
                if let SubmitOutcome::Held =
                    c.on_submit(read4k(id, g, SimTime::ZERO), SimTime::ZERO)
                {
                    held += 1;
                }
                id += 1;
            }
        }
        let held = c.held_count();
        assert!(held >= 6);
        // Far enough out that every hold clears.
        let released = c.drain_released(SimTime::from_secs(2));
        assert_eq!(released.len(), held, "all holds must clear");
        assert_eq!(c.held_count(), 0);
        let groups: Vec<usize> = released.iter().map(|r| r.group.index()).collect();
        let mut sorted = groups.clone();
        sorted.sort_unstable();
        assert_eq!(groups, sorted, "release order must be ascending slot order");
        // FIFO within each group: request ids increase per group.
        for g in [1usize, 3, 5] {
            let ids: Vec<u64> = released
                .iter()
                .filter(|r| r.group.index() == g)
                .map(|r| r.id)
                .collect();
            let mut s = ids.clone();
            s.sort_unstable();
            assert_eq!(ids, s, "FIFO violated for group {g}");
        }
    }

    #[test]
    fn idle_groups_are_pruned_from_the_active_set() {
        let mut c = IoCostController::new(fixed_cfg());
        let mut now = SimTime::ZERO;
        for g in 1..=8usize {
            if let SubmitOutcome::Pass(r) = c.on_submit(read4k(g as u64, g, now), now) {
                c.on_device_complete(&r, now);
            }
        }
        assert_eq!(c.active.len(), 8);
        // Let the activity window lapse and a tick prune.
        now += ACTIVE_WINDOW + SimDuration::from_millis(10);
        c.tick(now);
        assert_eq!(c.active.len(), 0, "idle groups must be pruned");
        // State stays materialized (overhead model counts total groups).
        assert_eq!(c.groups.len(), 8);
    }

    #[test]
    fn hweight_memo_matches_recompute() {
        // Against a busy mix, every cached hweight answer must equal a
        // from-scratch recomputation at the same instant.
        let mut c = IoCostController::new(fixed_cfg());
        c.set_weight(GroupId(1), 300);
        c.set_weight(GroupId(2), 100);
        c.set_weight(GroupId(4), 1000);
        let mut id = 0;
        let mut now = SimTime::ZERO;
        while now < SimTime::from_millis(50) {
            now += SimDuration::from_micros(100);
            for g in [1usize, 2, 4] {
                if let SubmitOutcome::Pass(r) = c.on_submit(read4k(id, g, now), now) {
                    c.on_device_complete(&r, now);
                }
                id += 1;
                let memo = c.hweight(GroupId(g), now);
                let (fresh, _) = c.hweight_compute(GroupId(g), now);
                assert_eq!(memo.to_bits(), fresh.to_bits(), "group {g} at {now:?}");
            }
            for r in c.drain_released(now) {
                c.on_device_complete(&r, now);
            }
            c.tick(now);
        }
    }
}
