//! # ioqos — cgroup block-I/O QoS controller models
//!
//! From-scratch implementations of the three cgroup-v2 QoS mechanisms the
//! paper evaluates (§IV-B), mirroring the kernel's `rq_qos` layering:
//!
//! * [`IoMaxThrottler`] — `io.max` / blk-throttle: static token buckets
//!   for rbps/wbps/riops/wiops per group. Never work-conserving, no
//!   prioritization (O8).
//! * [`IoLatencyController`] — `io.latency` / blk-iolatency: every 500 ms
//!   compares each protected group's achieved P90 completion latency to
//!   its target; on violation, *lower-priority* groups (higher or no
//!   target) have their effective queue depth halved (min 1); recovery
//!   adds `max_qd / 4` but only once the `use_delay` counter drains —
//!   which is why bursty prioritization takes seconds (O10).
//! * [`IoCostController`] — `io.cost` + `io.weight` / blk-iocost: every
//!   I/O gets an absolute cost from the linear device model; groups spend
//!   virtual time at `cost / hweight`; a group may dispatch while its
//!   vtime is within the margin of the global vtime, which advances at
//!   `vrate`. The QoS loop moves `vrate` within `[min, max]` based on
//!   measured tail latencies (O9).
//!
//! Controllers compose in a [`QosChain`] in kernel order
//! (`io.max` → `io.cost` → `io.latency`); requests held by one stage
//! resume at the next stage when released.
//!
//! # Example
//!
//! ```
//! use ioqos::{IoMaxThrottler, QosChain, QosController, SubmitOutcome};
//! use cgroup_sim::IoMax;
//! use blkio::{GroupId, IoRequest, AppId, DeviceId, IoOp, AccessPattern};
//! use simcore::SimTime;
//!
//! let mut throttler = IoMaxThrottler::new();
//! throttler.set_limits(GroupId(1), IoMax { riops: Some(10), ..Default::default() });
//! let req = IoRequest::new(0, AppId(0), GroupId(1), DeviceId(0), IoOp::Read,
//!                          AccessPattern::Random, 4096, 0, SimTime::ZERO);
//! // The first request passes on the burst allowance...
//! assert!(matches!(throttler.on_submit(req.clone(), SimTime::ZERO), SubmitOutcome::Pass(_)));
//! // ...the second is held until the 10 IOPS bucket refills.
//! let mut second = req.clone();
//! second.id = 1;
//! assert!(matches!(throttler.on_submit(second, SimTime::ZERO), SubmitOutcome::Held));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod chain;
mod iocost;
mod iolatency;
mod iomax;

pub use arena::{slot_of, GroupArena, GroupSlot, SlotSet};
pub use chain::QosChain;
pub use iocost::{IoCostConfig, IoCostController};
pub use iolatency::IoLatencyController;
pub use iomax::{burst_tokens, IoMaxThrottler, MIN_BURST_BYTES, MIN_BURST_IOS};

use blkio::IoRequest;
use simcore::{SimDuration, SimTime};

/// Result of offering a request to a QoS controller.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The request may proceed to the next stage immediately.
    Pass(IoRequest),
    /// The controller keeps the request; it will surface later via
    /// [`QosController::drain_released`].
    Held,
}

/// One cgroup QoS mechanism attached to a device queue (an `rq_qos`
/// policy in kernel terms).
///
/// The host engine offers each submitted request with `on_submit`,
/// reports device completions with `on_device_complete`, pumps held
/// requests out with `drain_released`, and calls `tick` whenever
/// `next_event` fires (window evaluation, vrate adjustment, token
/// refill).
pub trait QosController: std::fmt::Debug {
    /// Offers a request at instant `now`.
    fn on_submit(&mut self, req: IoRequest, now: SimTime) -> SubmitOutcome;

    /// Reports a device completion (latency feedback + slot release).
    fn on_device_complete(&mut self, req: &IoRequest, now: SimTime);

    /// Removes requests whose hold has expired at `now`, appending them
    /// to `out`. The engine calls this on nearly every event, so
    /// implementations must not allocate; callers pass a reused scratch
    /// buffer.
    fn drain_released_into(&mut self, now: SimTime, out: &mut Vec<IoRequest>);

    /// Convenience wrapper around
    /// [`QosController::drain_released_into`] returning a fresh `Vec`
    /// (allocates; for tests and one-off callers).
    fn drain_released(&mut self, now: SimTime) -> Vec<IoRequest> {
        let mut out = Vec::new();
        self.drain_released_into(now, &mut out);
        out
    }

    /// The earliest instant at which this controller needs attention
    /// (a hold expiry or a periodic evaluation), if any.
    fn next_event(&self, now: SimTime) -> Option<SimTime>;

    /// Performs periodic controller work due at or before `now`.
    fn tick(&mut self, now: SimTime);

    /// Extra per-I/O CPU burned on the submitting core. `deep_queue`
    /// distinguishes high-QD batch submitters (whose bookkeeping
    /// amortizes differently — e.g. iocost's per-cpu vtime caches make
    /// it cheaper per I/O, while blk-throttle's per-bio hierarchy walk
    /// makes io.max more expensive), reproducing the paper's Fig. 3 vs
    /// Fig. 4 overhead orderings.
    fn submit_cpu_overhead(&self, deep_queue: bool) -> SimDuration;

    /// Controller name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_util {
    use blkio::{AccessPattern, AppId, DeviceId, GroupId, IoOp, IoRequest, ReqId};
    use simcore::SimTime;

    pub fn req(id: ReqId, group: usize, op: IoOp, len: u32, at: SimTime) -> IoRequest {
        IoRequest::new(
            id,
            AppId(group),
            GroupId(group),
            DeviceId(0),
            op,
            AccessPattern::Random,
            len,
            0,
            at,
        )
    }

    pub fn read4k(id: ReqId, group: usize, at: SimTime) -> IoRequest {
        req(id, group, IoOp::Read, 4096, at)
    }
}
