//! Composition of QoS controllers into the kernel's `rq_qos` stack.

use blkio::IoRequest;
use simcore::trace::{self, TraceEvent, TraceKind};
use simcore::{SimDuration, SimTime};

use crate::{IoCostController, IoLatencyController, IoMaxThrottler, QosController, SubmitOutcome};

/// One stage in the chain. The set is closed: these are the three
/// mechanisms cgroup v2 exposes.
// Inline variants on purpose: a chain holds at most three stages, and
// the engine walks them on every event — boxing the large `Cost`
// variant would trade a few bytes for a pointer hop on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Stage {
    Max(IoMaxThrottler),
    Cost(IoCostController),
    Latency(IoLatencyController),
}

impl Stage {
    fn ctrl(&self) -> &dyn QosController {
        match self {
            Stage::Max(c) => c,
            Stage::Cost(c) => c,
            Stage::Latency(c) => c,
        }
    }

    fn ctrl_mut(&mut self) -> &mut dyn QosController {
        match self {
            Stage::Max(c) => c,
            Stage::Cost(c) => c,
            Stage::Latency(c) => c,
        }
    }
}

/// The ordered stack of QoS controllers in front of one device's
/// scheduler, mirroring the kernel order: blk-throttle (`io.max`) →
/// blk-iocost (`io.cost`) → blk-iolatency (`io.latency`).
///
/// A submitted request traverses the stages in order; any stage may hold
/// it. [`QosChain::drain`] pumps requests that a stage released onward
/// through the remaining stages and returns those that cleared the whole
/// stack.
///
/// # Example
///
/// ```
/// use ioqos::{QosChain, IoMaxThrottler};
/// use blkio::{IoRequest, AppId, GroupId, DeviceId, IoOp, AccessPattern};
/// use simcore::SimTime;
///
/// let mut chain = QosChain::new();
/// chain.push_io_max(IoMaxThrottler::new());
/// let req = IoRequest::new(0, AppId(0), GroupId(0), DeviceId(0), IoOp::Read,
///                          AccessPattern::Random, 4096, 0, SimTime::ZERO);
/// // No limits configured: the request clears the chain immediately.
/// assert!(chain.submit(req, SimTime::ZERO).is_some());
/// ```
#[derive(Debug, Default)]
pub struct QosChain {
    stages: Vec<Stage>,
    /// Reused scratch for stage-released requests (kept empty between
    /// [`QosChain::drain_into`] calls).
    released: Vec<IoRequest>,
}

impl QosChain {
    /// Creates an empty chain (no QoS control — the "none" baseline).
    #[must_use]
    pub fn new() -> Self {
        QosChain::default()
    }

    /// Appends an `io.max` throttler stage.
    pub fn push_io_max(&mut self, c: IoMaxThrottler) -> &mut Self {
        self.stages.push(Stage::Max(c));
        self
    }

    /// Appends an `io.cost` controller stage.
    pub fn push_io_cost(&mut self, c: IoCostController) -> &mut Self {
        self.stages.push(Stage::Cost(c));
        self
    }

    /// Appends an `io.latency` controller stage.
    pub fn push_io_latency(&mut self, c: IoLatencyController) -> &mut Self {
        self.stages.push(Stage::Latency(c));
        self
    }

    /// Mutable access to the `io.max` stage, if present.
    pub fn io_max_mut(&mut self) -> Option<&mut IoMaxThrottler> {
        self.stages.iter_mut().find_map(|s| match s {
            Stage::Max(c) => Some(c),
            _ => None,
        })
    }

    /// Mutable access to the `io.cost` stage, if present.
    pub fn io_cost_mut(&mut self) -> Option<&mut IoCostController> {
        self.stages.iter_mut().find_map(|s| match s {
            Stage::Cost(c) => Some(c),
            _ => None,
        })
    }

    /// Shared access to the `io.cost` stage, if present.
    #[must_use]
    pub fn io_cost(&self) -> Option<&IoCostController> {
        self.stages.iter().find_map(|s| match s {
            Stage::Cost(c) => Some(c),
            _ => None,
        })
    }

    /// Mutable access to the `io.latency` stage, if present.
    pub fn io_latency_mut(&mut self) -> Option<&mut IoLatencyController> {
        self.stages.iter_mut().find_map(|s| match s {
            Stage::Latency(c) => Some(c),
            _ => None,
        })
    }

    /// Shared access to the `io.latency` stage, if present.
    #[must_use]
    pub fn io_latency(&self) -> Option<&IoLatencyController> {
        self.stages.iter().find_map(|s| match s {
            Stage::Latency(c) => Some(c),
            _ => None,
        })
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the chain has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Requests currently parked inside the chain: held at any stage or
    /// released but not yet drained. 0 means the chain is quiescent and
    /// owns no request state — the invariant the sharded engine asserts
    /// when it moves a device's QoS chain onto a shard (vtime and all
    /// other controller state are per-device, so a quiescent chain
    /// migrates without cross-shard coupling).
    #[must_use]
    pub fn held_requests(&self) -> usize {
        let held: usize = self
            .stages
            .iter()
            .map(|s| match s {
                Stage::Max(c) => c.held_count(),
                Stage::Cost(c) => c.held_count(),
                Stage::Latency(c) => c.held_count(),
            })
            .sum();
        held + self.released.len()
    }

    fn feed_from(&mut self, mut req: IoRequest, now: SimTime) -> Option<IoRequest> {
        let start = usize::from(req.qos_stage);
        for i in start..self.stages.len() {
            req.qos_stage = i as u8;
            let (id, group, dev) = (req.id, req.group, req.dev);
            match self.stages[i].ctrl_mut().on_submit(req, now) {
                SubmitOutcome::Pass(r) => req = r,
                SubmitOutcome::Held => {
                    trace::record_with(|| {
                        TraceEvent::new(
                            now.as_nanos(),
                            TraceKind::QosEnter,
                            id,
                            group.0 as u32,
                            dev.0 as u32,
                            i as u64,
                            0,
                        )
                    });
                    return None;
                }
            }
        }
        req.qos_stage = self.stages.len() as u8;
        Some(req)
    }

    /// Offers a freshly submitted request; returns it if it cleared the
    /// whole chain, or `None` if some stage held it.
    pub fn submit(&mut self, mut req: IoRequest, now: SimTime) -> Option<IoRequest> {
        req.qos_stage = 0;
        self.feed_from(req, now)
    }

    /// Reports a device completion to every stage (latency feedback and
    /// slot release).
    pub fn on_device_complete(&mut self, req: &IoRequest, now: SimTime) {
        for s in &mut self.stages {
            s.ctrl_mut().on_device_complete(req, now);
        }
    }

    /// Pumps stage-released requests through the rest of the chain,
    /// appending those that cleared it entirely to `out`. Runs on
    /// nearly every engine event; with a caller-reused `out` the whole
    /// pass is allocation-free.
    pub fn drain_into(&mut self, now: SimTime, out: &mut Vec<IoRequest>) {
        let mut released = std::mem::take(&mut self.released);
        for i in 0..self.stages.len() {
            released.clear();
            self.stages[i]
                .ctrl_mut()
                .drain_released_into(now, &mut released);
            for mut r in released.drain(..) {
                r.qos_stage = (i + 1) as u8;
                if let Some(done) = self.feed_from(r, now) {
                    out.push(done);
                }
            }
        }
        released.clear();
        self.released = released;
    }

    /// Convenience wrapper around [`QosChain::drain_into`] returning a
    /// fresh `Vec` (allocates; for tests and one-off callers).
    pub fn drain(&mut self, now: SimTime) -> Vec<IoRequest> {
        let mut out = Vec::new();
        self.drain_into(now, &mut out);
        out
    }

    /// The earliest instant any stage needs attention.
    #[must_use]
    pub fn next_event(&self, now: SimTime) -> Option<SimTime> {
        self.stages
            .iter()
            .filter_map(|s| s.ctrl().next_event(now))
            .min()
    }

    /// Runs periodic work on every stage.
    pub fn tick(&mut self, now: SimTime) {
        for s in &mut self.stages {
            s.ctrl_mut().tick(now);
        }
    }

    /// Total extra per-I/O submit-path CPU of all stages; `deep_queue`
    /// selects the high-QD cost profile (see
    /// [`QosController::submit_cpu_overhead`]).
    #[must_use]
    pub fn submit_cpu_overhead(&self, deep_queue: bool) -> SimDuration {
        self.stages.iter().fold(SimDuration::ZERO, |acc, s| {
            acc + s.ctrl().submit_cpu_overhead(deep_queue)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::read4k;
    use blkio::GroupId;
    use cgroup_sim::IoMax;

    #[test]
    fn empty_chain_is_transparent() {
        let mut chain = QosChain::new();
        let r = read4k(0, 1, SimTime::ZERO);
        let out = chain.submit(r, SimTime::ZERO).unwrap();
        assert_eq!(out.id, 0);
        assert!(chain.is_empty());
        assert_eq!(chain.next_event(SimTime::ZERO), None);
        assert_eq!(chain.submit_cpu_overhead(false), SimDuration::ZERO);
    }

    #[test]
    fn held_at_first_stage_resumes_through_second() {
        let mut chain = QosChain::new();
        let mut throttler = IoMaxThrottler::new();
        throttler.set_limits(
            GroupId(1),
            IoMax {
                riops: Some(10),
                ..Default::default()
            },
        );
        chain.push_io_max(throttler);
        chain.push_io_latency(IoLatencyController::new(1024));
        chain
            .io_latency_mut()
            .unwrap()
            .set_target(GroupId(9), Some(1_000));
        // Burst allowance is 1 request; the second is held at io.max.
        assert!(chain
            .submit(read4k(0, 1, SimTime::ZERO), SimTime::ZERO)
            .is_some());
        assert!(chain
            .submit(read4k(1, 1, SimTime::ZERO), SimTime::ZERO)
            .is_none());
        // After 100 ms a token accrued; drain must push it through the
        // io.latency stage too and return it fully cleared.
        let out = chain.drain(SimTime::from_millis(100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 1);
        assert_eq!(usize::from(out[0].qos_stage), chain.len());
    }

    #[test]
    fn completion_reaches_all_stages() {
        let mut chain = QosChain::new();
        chain.push_io_latency(IoLatencyController::new(2));
        chain
            .io_latency_mut()
            .unwrap()
            .set_target(GroupId(1), Some(100));
        // Fill the QD-2 gate.
        let a = chain
            .submit(read4k(0, 2, SimTime::ZERO), SimTime::ZERO)
            .unwrap();
        let _b = chain
            .submit(read4k(1, 2, SimTime::ZERO), SimTime::ZERO)
            .unwrap();
        assert!(chain
            .submit(read4k(2, 2, SimTime::ZERO), SimTime::ZERO)
            .is_none());
        // Completing one frees a slot; drain releases the held request.
        chain.on_device_complete(&a, SimTime::from_micros(50));
        let out = chain.drain(SimTime::from_micros(50));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 2);
    }

    #[test]
    fn overheads_accumulate() {
        let mut chain = QosChain::new();
        chain.push_io_max(IoMaxThrottler::new());
        chain.push_io_latency(IoLatencyController::new(1024));
        assert_eq!(
            chain.submit_cpu_overhead(false),
            SimDuration::from_nanos(400)
        );
        assert_eq!(
            chain.submit_cpu_overhead(true),
            SimDuration::from_nanos(750)
        );
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn stage_accessors_find_their_stage() {
        let mut chain = QosChain::new();
        chain.push_io_max(IoMaxThrottler::new());
        assert!(chain.io_max_mut().is_some());
        assert!(chain.io_cost_mut().is_none());
        assert!(chain.io_latency_mut().is_none());
    }
}
