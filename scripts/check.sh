#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
#
# Run from the repository root:
#
#   ./scripts/check.sh          # everything (what CI runs)
#   ./scripts/check.sh --quick  # fmt + clippy only
#
# The workspace must pass clippy with -D warnings; fix lints rather than
# silencing them (or add a justified #[allow] at the site).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "--quick" ]]; then
    echo "OK (quick: fmt + clippy)"
    exit 0
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> fault suite (recovery properties + faulted-grid determinism)"
cargo test -q --test fault_recovery
cargo test -q -p isol-bench --test determinism q_faults

echo "==> degraded-harness check (forced cell panic must not abort the run)"
rm -f target/isol-bench/failures.json
./target/release/figures --smoke --faults --inject-panic q_faults-io.cost q_faults \
    > /dev/null
test -f target/isol-bench/failures.json \
    || { echo "FAIL: failures.json was not written"; exit 1; }
grep -q 'q_faults-io.cost' target/isol-bench/failures.json \
    || { echo "FAIL: failures.json does not name the panicked cell"; exit 1; }

echo "==> cell-cache check (warm rerun must be byte-identical, served from cache)"
rm -rf target/isol-bench/cache
cold_dir=$(mktemp -d)
./target/release/figures --smoke all > /dev/null
cp target/isol-bench/*.csv "$cold_dir"/
./target/release/figures --smoke all > /dev/null
for f in "$cold_dir"/*.csv; do
    cmp -s "$f" "target/isol-bench/$(basename "$f")" \
        || { echo "FAIL: $(basename "$f") differs between cold and warm runs"; exit 1; }
done
hits=$(grep -o '"hits": [0-9]*' target/isol-bench/timings.json | head -1 | grep -o '[0-9]*$')
[[ "${hits:-0}" -gt 0 ]] \
    || { echo "FAIL: warm run reported zero cache hits"; exit 1; }
rm -rf "$cold_dir"

echo "==> trace check (traced smoke run must satisfy every trace invariant)"
rm -rf target/isol-bench/traces
./target/release/figures --smoke --no-cache --trace fig4 > /dev/null
./target/release/traceck

echo "==> fleet_scale check (256-tenant smoke grid, byte-identical across --jobs/--shards)"
fleet_dir=$(mktemp -d)
./target/release/figures --smoke --no-cache --jobs 1 --shards 1 fleet_scale > /dev/null
cp target/isol-bench/fleet_scale.csv "$fleet_dir"/
./target/release/figures --smoke --no-cache --jobs 4 --shards 4 fleet_scale > /dev/null
cmp -s "$fleet_dir/fleet_scale.csv" target/isol-bench/fleet_scale.csv \
    || { echo "FAIL: fleet_scale.csv differs between sequential and parallel runs"; exit 1; }
rm -rf "$fleet_dir"

echo "==> sharded-run check (a sharded smoke run must be byte-identical to the cached sequential one)"
shard_dir=$(mktemp -d)
cp target/isol-bench/fig4*.csv "$shard_dir"/
./target/release/figures --smoke --no-cache --shards 4 fig4 > /dev/null
for f in "$shard_dir"/*.csv; do
    cmp -s "$f" "target/isol-bench/$(basename "$f")" \
        || { echo "FAIL: $(basename "$f") differs between sequential and --shards 4 runs"; exit 1; }
done
rm -rf "$shard_dir"

# Note: perfsnap's cells_per_sec reads timings.json from the most recent
# figures run, so this must come right after the fig4 sharded-run check
# (the fleet_scale grid above has much heavier cells).
echo "==> perf snapshot check (>10% regression against BENCH_pr7.json fails; includes the arena-vs-map io.cost tick gate)"
./target/release/perfsnap --check

echo "==> partial-trace check (a panicked traced cell must still leave a checkable trace)"
rm -rf target/isol-bench/traces
./target/release/figures --smoke --faults --no-cache --trace \
    --inject-panic q_faults-io.cost q_faults > /dev/null
test -s target/isol-bench/traces/q_faults-io.cost.trace.jsonl \
    || { echo "FAIL: panicked cell left no partial trace"; exit 1; }
./target/release/traceck

echo "OK"
