#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
#
# Run from the repository root:
#
#   ./scripts/check.sh          # everything (what CI runs)
#   ./scripts/check.sh --quick  # fmt + clippy only
#
# The workspace must pass clippy with -D warnings; fix lints rather than
# silencing them (or add a justified #[allow] at the site).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "--quick" ]]; then
    echo "OK (quick: fmt + clippy)"
    exit 0
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> closed-loop suite (engine conformance + scenario DSL + app_mix determinism)"
cargo test -q -p workload --test closed_loop
cargo test -q -p isol-bench --test scenario_file
cargo test -q -p isol-bench --test app_mix

echo "==> scenario smoke (figures --scenario must run every committed engine kind)"
./target/release/figures --scenario scenarios/app_mix_smoke.toml > /dev/null \
    || { echo "FAIL: scenario smoke run failed"; exit 1; }
if ./target/release/figures --scenario scenarios/does_not_exist.toml > /dev/null 2>&1; then
    echo "FAIL: a missing scenario file must fail the run"; exit 1
fi

echo "==> fault suite (recovery properties + faulted-grid determinism)"
cargo test -q --test fault_recovery
cargo test -q -p isol-bench --test determinism q_faults

echo "==> degraded-harness check (forced cell panic must not abort the run)"
rm -f target/isol-bench/failures.json
./target/release/figures --smoke --faults --inject-panic q_faults-io.cost q_faults \
    > /dev/null
test -f target/isol-bench/failures.json \
    || { echo "FAIL: failures.json was not written"; exit 1; }
grep -q 'q_faults-io.cost' target/isol-bench/failures.json \
    || { echo "FAIL: failures.json does not name the panicked cell"; exit 1; }

echo "==> cell-cache check (warm rerun must be byte-identical, served from cache)"
rm -rf target/isol-bench/cache
cold_dir=$(mktemp -d)
./target/release/figures --smoke all > /dev/null
cp target/isol-bench/*.csv "$cold_dir"/
./target/release/figures --smoke all > /dev/null
for f in "$cold_dir"/*.csv; do
    cmp -s "$f" "target/isol-bench/$(basename "$f")" \
        || { echo "FAIL: $(basename "$f") differs between cold and warm runs"; exit 1; }
done
hits=$(grep -o '"hits": [0-9]*' target/isol-bench/timings.json | head -1 | grep -o '[0-9]*$')
[[ "${hits:-0}" -gt 0 ]] \
    || { echo "FAIL: warm run reported zero cache hits"; exit 1; }
rm -rf "$cold_dir"

echo "==> trace check (traced smoke run must satisfy every trace invariant)"
rm -rf target/isol-bench/traces
./target/release/figures --smoke --no-cache --trace fig4 > /dev/null
./target/release/traceck

echo "==> fleet_scale check (256-tenant smoke grid, byte-identical across --jobs/--shards)"
fleet_dir=$(mktemp -d)
./target/release/figures --smoke --no-cache --jobs 1 --shards 1 fleet_scale > /dev/null
cp target/isol-bench/fleet_scale.csv "$fleet_dir"/
./target/release/figures --smoke --no-cache --jobs 4 --shards 4 fleet_scale > /dev/null
cmp -s "$fleet_dir/fleet_scale.csv" target/isol-bench/fleet_scale.csv \
    || { echo "FAIL: fleet_scale.csv differs between sequential and parallel runs"; exit 1; }
rm -rf "$fleet_dir"

echo "==> sharded-run check (a sharded smoke run must be byte-identical to the cached sequential one)"
shard_dir=$(mktemp -d)
cp target/isol-bench/fig4*.csv "$shard_dir"/
./target/release/figures --smoke --no-cache --shards 4 fig4 > /dev/null
for f in "$shard_dir"/*.csv; do
    cmp -s "$f" "target/isol-bench/$(basename "$f")" \
        || { echo "FAIL: $(basename "$f") differs between sequential and --shards 4 runs"; exit 1; }
done
rm -rf "$shard_dir"

# Note: perfsnap's cells_per_sec and the PR 9 fig4/q10 per-cell gates
# read timings.json from the most recent figures run, so the fig4+q10
# regeneration must come right before it (the fleet_scale grid above
# has much heavier cells and would skew both).
echo "==> perf snapshot check (>10% regression against BENCH_pr7.json/BENCH_pr9.json fails; includes the arena-vs-map io.cost tick gate, the merged-vs-legacy engine gate, and the 64k-tenant cell budget + >=3x-vs-PR8 gates)"
./target/release/figures --smoke --no-cache fig4 q10 > /dev/null
./target/release/perfsnap --check

echo "==> partial-trace check (a panicked traced cell must still leave a checkable trace)"
rm -rf target/isol-bench/traces
./target/release/figures --smoke --faults --no-cache --trace \
    --inject-panic q_faults-io.cost q_faults > /dev/null
test -s target/isol-bench/traces/q_faults-io.cost.trace.jsonl \
    || { echo "FAIL: panicked cell left no partial trace"; exit 1; }
./target/release/traceck

echo "==> chaos check (SIGKILL mid-run, then --resume must be byte-identical)"
chaos_dir=$(mktemp -d)
rm -rf target/isol-bench/journal
./target/release/figures --smoke fig4 --no-cache > /dev/null
cp target/isol-bench/fig4*.csv "$chaos_dir"/
rm -rf target/isol-bench/journal
./target/release/figures --smoke fig4 --no-cache > /dev/null 2>&1 &
victim=$!
for _ in $(seq 1 600); do
    cells=$(grep -c '"cell":' target/isol-bench/journal/run.jsonl 2>/dev/null || true)
    [[ "${cells:-0}" -ge 3 ]] && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
./target/release/figures --smoke fig4 --no-cache --resume > /dev/null
for f in "$chaos_dir"/*.csv; do
    cmp -s "$f" "target/isol-bench/$(basename "$f")" \
        || { echo "FAIL: $(basename "$f") differs after SIGKILL + --resume"; exit 1; }
done
grep -q '"resumed": [1-9]' target/isol-bench/timings.json \
    || { echo "FAIL: resumed run replayed no cells from the journal"; exit 1; }
rm -rf "$chaos_dir"

echo "==> watchdog check (--inject-hang cell must be cancelled within the deadline, retried, quarantined; run still exits 0)"
hang_start=$SECONDS
./target/release/figures --smoke fig4 --no-cache --inject-hang fig4-none-1ssd-1 \
    --watchdog-soft-ms 4000 --watchdog-hard-ms 10000 \
    --cell-retries 1 --retry-backoff-ms 10 > /dev/null 2>&1 \
    || { echo "FAIL: a hung cell must not fail the run"; exit 1; }
hang_elapsed=$(( SECONDS - hang_start ))
# Two 4s soft-deadline attempts + the healthy grid: a watchdog-bounded
# run stays far under this; an unbounded hang never returns at all.
[[ "$hang_elapsed" -lt 90 ]] \
    || { echo "FAIL: watchdog did not bound the hung run (${hang_elapsed}s)"; exit 1; }
grep -q '"class": "timed_out"' target/isol-bench/failures.json \
    || { echo "FAIL: hung cell was not classified timed_out"; exit 1; }
grep -q '"quarantined": \["fig4-none-1ssd-1"\]' target/isol-bench/timings.json \
    || { echo "FAIL: hung cell was not quarantined"; exit 1; }

echo "OK"
