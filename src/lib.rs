//! # isol-bench-repro — facade crate
//!
//! Re-exports every crate of the isol-bench reproduction under one
//! roof, so examples and downstream users can depend on a single crate:
//!
//! * [`bench_suite`] — the isol-bench benchmark suite itself (scenarios,
//!   knobs, desiderata experiments, Table I derivation),
//! * [`host`] — the simulated host machine,
//! * [`cgroup`] — the cgroup-v2 hierarchy and knob grammars,
//! * [`sched`] — MQ-Deadline / BFQ / Kyber scheduler models,
//! * [`qos`] — io.max / io.latency / io.cost controller models,
//! * [`nvme`] — the NVMe SSD device model,
//! * [`workload`] — the fio-like workload generator,
//! * [`stats`] — histograms, Jain's index, bandwidth series, tables,
//! * [`simcore`] / [`blkio`] — the simulation core and shared I/O types.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `figures` binary (`cargo run --release -p isol-bench-harness --bin
//! figures`) to regenerate every table and figure of the paper.

pub use blkio;
pub use cgroup_sim as cgroup;
pub use host_sim as host;
pub use ioqos as qos;
pub use iosched_sim as sched;
pub use iostats as stats;
pub use isol_bench as bench_suite;
pub use nvme_sim as nvme;
pub use simcore;
pub use workload;
