//! End-to-end assertions of the paper's ten observations (O1–O10) and
//! the Table I verdicts, at smoke fidelity. These are the "shape"
//! checks: who wins, in which direction, and by roughly what kind of
//! margin — not absolute numbers.

use isol_bench_repro::bench_suite::experiments::{fig2, fig3, fig4, fig5, fig6, fig7, q10, table1};
use isol_bench_repro::bench_suite::{Fidelity, Knob, OutputSink};

const F: Fidelity = Fidelity::Smoke;

fn sink() -> OutputSink {
    OutputSink::quiet()
}

#[test]
fn o1_scheduler_latency_overhead_and_iocost_past_saturation() {
    let r = fig3::run(F, &mut sink()).unwrap();
    let none1 = r.row(Knob::None, 1).unwrap().p99_us;
    // MQ-DL and BFQ add tail latency already at one LC-app.
    assert!(r.row(Knob::MqDlPrio, 1).unwrap().p99_us > 1.02 * none1);
    assert!(r.row(Knob::BfqWeight, 1).unwrap().p99_us > 1.05 * none1);
    // io.max / io.latency are near-free; io.cost pays past saturation.
    assert!(r.row(Knob::IoMax, 1).unwrap().p99_us < 1.05 * none1);
    assert!(r.row(Knob::IoLatency, 1).unwrap().p99_us < 1.05 * none1);
    let none16 = r.row(Knob::None, 16).unwrap().p99_us;
    assert!(r.row(Knob::IoCost, 16).unwrap().p99_us > 1.15 * none16);
}

#[test]
fn o2_schedulers_cannot_saturate_nvme() {
    let r = fig4::run(F, &mut sink()).unwrap();
    let none = r.peak_gib_s(Knob::None, 1);
    assert!(r.peak_gib_s(Knob::MqDlPrio, 1) < 0.75 * none);
    assert!(r.peak_gib_s(Knob::BfqWeight, 1) < 0.5 * none);
    // QoS knobs lose at most a sliver.
    assert!(r.peak_gib_s(Knob::IoCost, 1) > 0.85 * none);
    assert!(r.peak_gib_s(Knob::IoMax, 1) > 0.85 * none);
}

#[test]
fn o3_o4_fairness_and_weights() {
    let r = fig5::run(F, &mut sink()).unwrap();
    // Uniform fairness at small scale for every knob (Fig. 5a).
    for knob in Knob::ALL {
        assert!(r.row(knob, 2, false).unwrap().jain > 0.85, "{knob}");
    }
    // io.cost's model/min-window costs utilization (O3).
    let none_agg = r.row(Knob::None, 2, false).unwrap().agg_gib_s;
    let cost_agg = r.row(Knob::IoCost, 2, false).unwrap().agg_gib_s;
    assert!(cost_agg < 0.75 * none_agg);
    // Weighted fairness works for weight-capable knobs (O4).
    for knob in [Knob::IoCost, Knob::IoMax] {
        assert!(r.row(knob, 2, true).unwrap().jain > 0.85, "{knob}");
    }
}

#[test]
fn o5_mixed_workload_fairness() {
    let r = fig6::run(F, &mut sink()).unwrap();
    // Request sizes break fairness without byte-aware control.
    assert!(r.row(Knob::None, fig6::MixCase::Sizes).unwrap().jain < 0.7);
    assert!(r.row(Knob::IoMax, fig6::MixCase::Sizes).unwrap().jain > 0.8);
    assert!(r.row(Knob::IoCost, fig6::MixCase::Sizes).unwrap().jain > 0.8);
    // io.cost's asymmetric write costing shows in read-write mixes.
    let cost_rw = r.row(Knob::IoCost, fig6::MixCase::ReadWrite).unwrap();
    assert!(cost_rw.cg0_mib_s > cost_rw.cg1_mib_s);
}

#[test]
fn o6_to_o9_tradeoff_fronts() {
    let r = fig7::run(F, &mut sink()).unwrap();
    use fig7::{BeVariant, PrioScenario};
    // O8: io.max sweeps trade BE bandwidth for priority bandwidth.
    let iomax = r.front(Knob::IoMax, PrioScenario::Batch, BeVariant::Rand4k);
    assert!(iomax[0].prio_mib_s > iomax.last().unwrap().prio_mib_s);
    // O9: io.cost protects LC latency against the same BE side.
    let cost = r.front(Knob::IoCost, PrioScenario::Lc, BeVariant::Rand4k);
    let none = r.front(Knob::None, PrioScenario::Lc, BeVariant::Rand4k);
    assert!(cost[0].prio_p99_us < none[0].prio_p99_us);
    // O6: BFQ cannot spread a single app's bandwidth like io.max can.
    let bfq = r.front(Knob::BfqWeight, PrioScenario::Batch, BeVariant::Rand4k);
    let bfq_spread = bfq.iter().map(|p| p.prio_mib_s).fold(0.0, f64::max)
        - bfq
            .iter()
            .map(|p| p.prio_mib_s)
            .fold(f64::INFINITY, f64::min);
    let iomax_spread = iomax.iter().map(|p| p.prio_mib_s).fold(0.0, f64::max)
        - iomax
            .iter()
            .map(|p| p.prio_mib_s)
            .fold(f64::INFINITY, f64::min);
    assert!(bfq_spread < 0.7 * iomax_spread);
}

#[test]
fn o10_burst_response_times() {
    let r = q10::run(F, &mut sink()).unwrap();
    let cost = r.row(Knob::IoCost, q10::BurstApp::Batch).unwrap();
    let iolat = r.row(Knob::IoLatency, q10::BurstApp::Batch).unwrap();
    assert!(cost.response_ms < 150.0, "io.cost {}", cost.response_ms);
    assert!(
        iolat.response_ms > 400.0 || iolat.response_ms.is_infinite(),
        "io.latency {}",
        iolat.response_ms
    );
}

#[test]
fn fig2_signatures() {
    let r = fig2::run(F, &mut sink()).unwrap();
    // MQ-DL (panel b) starves the idle app while rt runs.
    let b = &r.panels[1];
    assert!(b.mean_in_phase(2, 2.5, 5.0) < 0.2 * b.mean_in_phase(0, 2.5, 5.0));
    // io.cost weights (panel h) order the three tenants.
    let hh = &r.panels[7];
    let (a, bm, c) = (
        hh.mean_in_phase(0, 2.5, 5.0),
        hh.mean_in_phase(1, 2.5, 5.0),
        hh.mean_in_phase(2, 2.5, 5.0),
    );
    assert!(a > bm && bm > c, "io.cost weight ordering {a} {bm} {c}");
}

#[test]
fn table1_headline_verdicts_match_paper() {
    let mut s = sink();
    let f3 = fig3::run(F, &mut s).unwrap();
    let f4 = fig4::run(F, &mut s).unwrap();
    let f5 = fig5::run(F, &mut s).unwrap();
    let f6 = fig6::run(F, &mut s).unwrap();
    let f7 = fig7::run(F, &mut s).unwrap();
    let q = q10::run(F, &mut s).unwrap();
    let t = table1::derive(&f3, &f4, &f5, &f6, &f7, &q, F);

    use table1::Verdict;
    // The paper's headline: io.cost achieves the most desiderata.
    let cost = t.row(Knob::IoCost).unwrap();
    assert_eq!(cost.fairness, Verdict::Yes, "io.cost fairness");
    assert_eq!(cost.bursts, Verdict::Yes, "io.cost bursts");
    assert_ne!(cost.overhead, Verdict::No, "io.cost overhead is - not X");
    // io.max: low overhead but static semantics elsewhere.
    let iomax = t.row(Knob::IoMax).unwrap();
    assert_eq!(iomax.overhead, Verdict::Yes, "io.max overhead");
    assert_eq!(iomax.fairness, Verdict::Partial, "io.max fairness");
    // io.latency: low overhead, no weighted fairness, slow bursts.
    let iolat = t.row(Knob::IoLatency).unwrap();
    assert_eq!(iolat.overhead, Verdict::Yes, "io.latency overhead");
    assert_eq!(iolat.fairness, Verdict::No, "io.latency fairness");
    assert_eq!(iolat.bursts, Verdict::No, "io.latency bursts");
    // The schedulers fail across the board.
    for knob in [Knob::MqDlPrio, Knob::BfqWeight] {
        let row = t.row(knob).unwrap();
        assert_eq!(row.overhead, Verdict::No, "{knob} overhead");
        assert_eq!(row.tradeoffs, Verdict::No, "{knob} tradeoffs");
        assert_eq!(row.bursts, Verdict::No, "{knob} bursts");
    }
}
