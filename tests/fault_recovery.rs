//! Property-based tests for the fault-injection recovery path: across
//! arbitrary fault mixes, deadlines, and queue depths, the host-side
//! timeout/retry/backoff/reset machinery must never lose a request and
//! never complete one twice. Conservation is checked end to end through
//! the app accounting: after the device drains, every issued request is
//! either completed or failed back — exactly once.

use proptest::prelude::*;

use isol_bench_repro::bench_suite::Scenario;
use isol_bench_repro::host::DeviceSetup;
use isol_bench_repro::nvme::FaultConfig;
use isol_bench_repro::simcore::{SimDuration, SimTime};
use isol_bench_repro::workload::JobSpec;

/// Issue window: apps stop here; the run continues until [`UNTIL`] so
/// every in-flight command can finish, time out, back off, retry, and
/// ride out injected resets (worst chain: 4 attempts × (15 ms deadline
/// + backoff) + a reset, far below the 350 ms drain gap).
const STOP_AT: SimTime = SimTime::from_millis(50);
const UNTIL: SimTime = SimTime::from_millis(400);

fn run_conservation_case(
    faults: FaultConfig,
    io_timeout: Option<SimDuration>,
    iodepth: u32,
    seed: u64,
) -> (u64, u64, u64) {
    let device = DeviceSetup::flash().with_faults(faults);
    let mut s = Scenario::new("fault-conservation", 2, vec![device]);
    s.set_seed(seed);
    s.set_io_timeout(io_timeout);
    let g = s.add_cgroup("g");
    s.add_app(
        g,
        JobSpec::builder("load")
            .iodepth(iodepth)
            .stop_at(STOP_AT)
            .build(),
    );
    let r = s.run(UNTIL);
    let a = &r.apps[0];
    (a.issued, a.completed, a.failed)
}

fn timeout_strategy() -> impl Strategy<Value = Option<SimDuration>> {
    prop_oneof![
        Just(None),
        (2u64..15).prop_map(|ms| Some(SimDuration::from_millis(ms))),
    ]
}

fn reset_strategy() -> impl Strategy<Value = Option<SimDuration>> {
    prop_oneof![
        Just(None),
        (20u64..60).prop_map(|ms| Some(SimDuration::from_millis(ms))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The state-machine property: for any fault mix, any deadline, and
    /// any queue depth, `issued == completed + failed` once the device
    /// drains. A lost request (dropped on abort/reset/retry) breaks the
    /// equality one way; a double completion (stale timer firing on a
    /// reused slot) breaks it the other.
    #[test]
    fn no_request_is_lost_or_double_completed(
        media_pm in 0u32..300,          // per-mille ×1000 → rate 0..0.3
        stall_pm in 0u32..50,
        stall_ms in 1u64..40,
        spike_pm in 0u32..10,
        io_timeout in timeout_strategy(),
        reset_period in reset_strategy(),
        iodepth in 1u32..64,
        seed in 0u64..u64::MAX,
    ) {
        let faults = FaultConfig {
            media_error_rate: f64::from(media_pm) / 1000.0,
            stall_rate: f64::from(stall_pm) / 1000.0,
            stall: SimDuration::from_millis(stall_ms),
            spike_rate: f64::from(spike_pm) / 1000.0,
            spike_mult: 8.0,
            reset_period,
            reset_duration: SimDuration::from_millis(2),
            window: None,
        };
        let (issued, completed, failed) =
            run_conservation_case(faults, io_timeout, iodepth, seed);
        prop_assert!(issued > 0, "load generator issued nothing");
        prop_assert_eq!(
            issued,
            completed + failed,
            "conservation broken: issued {} != completed {} + failed {}",
            issued,
            completed,
            failed
        );
    }

    /// With every command failing and the retry budget finite, all
    /// requests must come back as failures — none stuck, none completed.
    #[test]
    fn total_media_failure_fails_everything_back(
        iodepth in 1u32..32,
        seed in 0u64..u64::MAX,
    ) {
        let faults = FaultConfig {
            media_error_rate: 1.0,
            ..FaultConfig::none()
        };
        let (issued, completed, failed) =
            run_conservation_case(faults, Some(SimDuration::from_millis(10)), iodepth, seed);
        prop_assert!(issued > 0);
        prop_assert_eq!(completed, 0u64, "nothing can complete at rate 1.0");
        prop_assert_eq!(failed, issued);
    }
}
