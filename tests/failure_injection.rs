//! Failure-injection and robustness tests: hostile configurations,
//! GC storms, degenerate scales, and misuse of the cgroup API must
//! either behave gracefully or fail loudly — never corrupt results.

use isol_bench_repro::bench_suite::Scenario;
use isol_bench_repro::blkio::AppId;
use isol_bench_repro::cgroup::{CgroupError, Hierarchy};
use isol_bench_repro::host::DeviceSetup;
use isol_bench_repro::nvme::DeviceProfile;
use isol_bench_repro::simcore::SimTime;
use isol_bench_repro::workload::{JobSpec, RwKind};

#[test]
fn gc_storm_mid_run_degrades_then_recovers() {
    // Writers run only in the middle third; readers run throughout.
    let mut s = Scenario::new("gc-storm", 6, vec![DeviceSetup::flash()]);
    let readers = s.add_cgroup("readers");
    let writers = s.add_cgroup("writers");
    for i in 0..2 {
        s.add_app(readers, JobSpec::batch_app(&format!("r{i}")));
    }
    for i in 0..4 {
        s.add_app(
            writers,
            JobSpec::builder(&format!("w{i}"))
                .rw(RwKind::RandWrite)
                .iodepth(256)
                .start_at(SimTime::from_millis(400))
                .stop_at(SimTime::from_millis(800))
                .build(),
        );
    }
    let r = s.run(SimTime::from_millis(1_600));
    let series = &r.apps[0].series;
    let before = series.mean_mib_s(SimTime::from_millis(100), SimTime::from_millis(400));
    let during = series.mean_mib_s(SimTime::from_millis(500), SimTime::from_millis(800));
    let after = series.mean_mib_s(SimTime::from_millis(1_300), SimTime::from_millis(1_600));
    assert!(
        during < 0.7 * before,
        "GC should dent reads: before {before} during {during}"
    );
    assert!(
        after > 1.5 * during,
        "reads should recover after GC drains: {during} -> {after}"
    );
}

#[test]
fn misconfigured_hierarchy_fails_loudly_not_silently() {
    let mut h = Hierarchy::new();
    let slice = h.create(Hierarchy::ROOT, "s").unwrap();
    // No +io on the slice.
    let g = h.create(slice, "g").unwrap();
    assert_eq!(
        h.write(g, "io.max", "259:0 rbps=1"),
        Err(CgroupError::IoControllerNotEnabled)
    );
    // Garbage values never partially apply.
    h.enable_io(slice).unwrap();
    assert!(h.write(g, "io.max", "259:0 rbps=fast").is_err());
    assert_eq!(h.read(g, "io.max").unwrap(), "");
    // A bogus device key is rejected before any state change.
    assert!(h.write(g, "io.latency", "nvme0n1 target=75").is_err());
}

#[test]
fn zero_weight_and_overflow_weights_rejected() {
    let mut h = Hierarchy::new();
    let slice = h.create(Hierarchy::ROOT, "s").unwrap();
    h.enable_io(slice).unwrap();
    let g = h.create(slice, "g").unwrap();
    assert!(h.write(g, "io.weight", "default 0").is_err());
    assert!(h.write(g, "io.weight", "default 10001").is_err());
    assert!(h
        .write(
            g,
            "io.weight",
            &format!("default {}", u64::from(u32::MAX) + 1)
        )
        .is_err());
}

#[test]
fn stale_group_ids_error_after_removal() {
    let mut h = Hierarchy::new();
    let slice = h.create(Hierarchy::ROOT, "s").unwrap();
    h.enable_io(slice).unwrap();
    let g = h.create(slice, "g").unwrap();
    h.remove(g).unwrap();
    // The tombstoned group reads as parentless; re-creating the name works.
    assert_eq!(h.group(g).unwrap().parent(), None);
    let g2 = h.create(slice, "g").unwrap();
    assert_ne!(g, g2, "ids are never reused");
}

#[test]
fn tiny_device_still_simulates() {
    let mut profile = DeviceProfile::flash();
    profile.capacity_bytes = 8 << 20; // 8 MiB
    profile.units = 1;
    profile.max_qd = 2;
    let setup = DeviceSetup {
        profile,
        ..DeviceSetup::flash()
    };
    let mut s = Scenario::new("tiny", 1, vec![setup]);
    let g = s.add_cgroup("g");
    s.add_app(g, JobSpec::lc_app("lc"));
    let r = s.run(SimTime::from_millis(100));
    assert!(
        r.apps[0].completed > 100,
        "tiny device still makes progress"
    );
}

#[test]
fn many_groups_scale_without_blowup() {
    // 128 cgroups with one LC app each on one core: CPU-saturated but
    // the simulation must stay consistent.
    let mut s = Scenario::new("many", 1, vec![DeviceSetup::flash()]);
    for i in 0..128 {
        let g = s.add_cgroup(&format!("g{i}"));
        s.add_app(g, JobSpec::lc_app(&format!("lc{i}")));
    }
    let r = s.run(SimTime::from_millis(150));
    let total: u64 = r.apps.iter().map(|a| a.completed).sum();
    assert!(
        total > 1_000,
        "aggregate progress under extreme co-location: {total}"
    );
    // Every app made at least some progress (no total starvation).
    let starved = r.apps.iter().filter(|a| a.completed == 0).count();
    assert!(starved < 8, "{starved}/128 apps fully starved");
}

#[test]
fn app_stopping_with_inflight_requests_completes_cleanly() {
    let mut s = Scenario::new("stop", 2, vec![DeviceSetup::flash()]);
    let g = s.add_cgroup("g");
    s.add_app(
        g,
        JobSpec::builder("short")
            .iodepth(256)
            .stop_at(SimTime::from_millis(5))
            .build(),
    );
    let r = s.run(SimTime::from_millis(100));
    // All issued requests eventually completed (none lost in the stack).
    assert_eq!(
        r.apps[0].issued, r.apps[0].completed,
        "requests lost in flight"
    );
}

#[test]
fn rate_cap_far_above_capacity_is_harmless() {
    let mut s = Scenario::new("cap", 4, vec![DeviceSetup::flash()]);
    let g = s.add_cgroup("g");
    s.add_app(
        g,
        JobSpec::builder("j").iodepth(128).rate_mib_s(1e6).build(),
    );
    let r = s.run(SimTime::from_millis(200));
    let gib_s = r.aggregate_gib_s();
    // One submitter at QD 128 is CPU-bound near 1 GiB/s on this host.
    assert!(
        (0.8..3.3).contains(&gib_s),
        "sane throughput despite silly cap: {gib_s}"
    );
}

#[test]
fn processes_cannot_be_attached_twice_inconsistently() {
    let mut h = Hierarchy::new();
    let slice = h.create(Hierarchy::ROOT, "s").unwrap();
    h.enable_io(slice).unwrap();
    let a = h.create(slice, "a").unwrap();
    let b = h.create(slice, "b").unwrap();
    h.attach_process(a, AppId(0)).unwrap();
    h.attach_process(b, AppId(0)).unwrap();
    assert_eq!(h.group_of(AppId(0)), b);
    assert!(h.group(a).unwrap().procs().is_empty());
}

#[test]
fn preconditioned_optane_ignores_gc_pressure() {
    let mut s = Scenario::new("optane", 4, vec![DeviceSetup::optane().preconditioned(1.0)]);
    let g = s.add_cgroup("g");
    s.add_app(
        g,
        JobSpec::builder("w")
            .rw(RwKind::RandWrite)
            .iodepth(128)
            .build(),
    );
    let r = s.run(SimTime::from_millis(200));
    let gib_s = r.aggregate_gib_s();
    assert!(
        gib_s > 0.8,
        "optane sustains writes regardless of preconditioning: {gib_s}"
    );
    assert_eq!(r.devices[0].gc_level, 0.0);
}
