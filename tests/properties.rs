//! Property-based tests (proptest) on the core invariants of the
//! reproduction: knob grammar round-trips, fairness-index bounds,
//! histogram/quantile consistency, token-bucket conservation, and
//! simulation determinism under arbitrary job mixes.

use proptest::prelude::*;

use isol_bench_repro::bench_suite::Scenario;
use isol_bench_repro::cgroup::{BfqWeight, DevNode, IoCostQos, IoMax, IoWeight};
use isol_bench_repro::host::DeviceSetup;
use isol_bench_repro::simcore::{SimDuration, SimTime, TokenBucket};
use isol_bench_repro::stats::{jain_index, weighted_jain_index, LatencyHistogram};
use isol_bench_repro::workload::{JobSpec, RwKind};

fn limit() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (1u64..=1 << 40).prop_map(Some)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn io_max_grammar_roundtrips(rbps in limit(), wbps in limit(), riops in limit(), wiops in limit()) {
        let m = IoMax { rbps, wbps, riops, wiops };
        let rendered = m.to_string();
        let parsed = IoMax::parse_fields(&rendered).expect("own rendering parses");
        prop_assert_eq!(m, parsed);
    }

    #[test]
    fn io_weight_grammar_roundtrips(default in 1u32..=10_000, devs in proptest::collection::btree_map(0u32..8, 1u32..=10_000, 0..4)) {
        let mut w = IoWeight {
            default,
            ..IoWeight::default()
        };
        for (minor, weight) in devs {
            w.per_dev.insert(DevNode::nvme(minor), weight);
        }
        let rendered = w.to_string();
        let parsed = IoWeight::parse(&rendered, IoWeight::MAX).expect("parses");
        prop_assert_eq!(w, parsed);
    }

    #[test]
    fn bfq_weight_range_is_enforced(v in 1001u32..100_000) {
        let line = format!("default {v}");
        prop_assert!(BfqWeight::parse(&line).is_err());
    }

    #[test]
    fn cost_qos_roundtrips(enable in proptest::bool::ANY,
                           rpct in 0u32..=100, rlat in 0u64..10_000_000,
                           min in 1u32..=100, extra in 0u32..=900) {
        let q = IoCostQos {
            enable,
            ctrl: isol_bench_repro::cgroup::CostCtrl::User,
            rpct: f64::from(rpct),
            rlat_us: rlat,
            wpct: 0.0,
            wlat_us: 0,
            min_pct: f64::from(min),
            max_pct: f64::from(min + extra),
        };
        let parsed = IoCostQos::parse_fields(&q.to_string()).expect("parses");
        prop_assert_eq!(q, parsed);
    }

    #[test]
    fn jain_index_bounds(xs in proptest::collection::vec(0.0f64..1e9, 1..32)) {
        let j = jain_index(&xs);
        let lo = 1.0 / xs.len() as f64;
        prop_assert!(j >= lo - 1e-9, "J = {} below 1/n", j);
        prop_assert!(j <= 1.0 + 1e-9, "J = {} above 1", j);
    }

    #[test]
    fn weighted_jain_with_proportional_bandwidth_is_one(ws in proptest::collection::vec(1u32..1000, 2..16), scale in 0.001f64..1e6) {
        let pairs: Vec<(f64, f64)> = ws.iter().map(|&w| (f64::from(w) * scale, f64::from(w))).collect();
        let j = weighted_jain_index(&pairs);
        prop_assert!((j - 1.0).abs() < 1e-9, "J = {}", j);
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_bounded(samples in proptest::collection::vec(1u64..10_000_000_000, 1..500)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record_ns(s);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile_ns(q);
            prop_assert!(p >= last);
            last = p;
        }
        // The quantile estimate sits within the histogram's relative
        // error of the true value.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        let est = h.percentile_ns(0.5);
        let err = (est as f64 - true_median as f64).abs() / true_median as f64;
        prop_assert!(err < 0.05, "median {est} vs true {true_median}");
    }

    #[test]
    fn token_bucket_never_overdelivers(rate in 1.0f64..1e9, takes in proptest::collection::vec(1u32..100_000, 1..100)) {
        let capacity = rate * 0.05 + 1.0;
        let mut tb = TokenBucket::new(rate, capacity);
        let mut granted = 0.0f64;
        let mut now = SimTime::ZERO;
        for (i, t) in takes.iter().enumerate() {
            now = SimTime::from_micros((i as u64 + 1) * 100);
            let need = f64::from(*t);
            if tb.try_take(need, now).is_ok() {
                granted += need;
            }
        }
        // Conservation: cannot exceed initial burst + accrual.
        let max_possible = capacity + now.as_secs_f64() * rate + 1.0;
        prop_assert!(granted <= max_possible, "granted {granted} > {max_possible}");
    }

    #[test]
    fn burst_pattern_is_periodic(on_ms in 1u64..100, off_ms in 1u64..100, t_ms in 0u64..10_000) {
        let spec = JobSpec::builder("b")
            .burst(SimDuration::from_millis(on_ms), SimDuration::from_millis(off_ms))
            .build();
        let period = on_ms + off_ms;
        let a = spec.is_active(SimTime::from_millis(t_ms));
        let b = spec.is_active(SimTime::from_millis(t_ms + period));
        prop_assert_eq!(a, b, "activity must be periodic");
    }
}

proptest! {
    // Simulation-backed properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulation_is_deterministic_for_arbitrary_jobs(
        seed in 0u64..1000,
        qd in 1u32..64,
        bs_shift in 12u32..18,
        read_frac in 0.0f64..=1.0,
    ) {
        let build = || {
            let mut s = Scenario::new("prop", 2, vec![DeviceSetup::flash().preconditioned(0.5)]);
            s.set_seed(seed);
            let g = s.add_cgroup("g");
            s.add_app(
                g,
                JobSpec::builder("j")
                    .rw(RwKind::RandRw { read_frac })
                    .block_size(1 << bs_shift)
                    .iodepth(qd)
                    .build(),
            );
            s.run(SimTime::from_millis(60))
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.total_bytes(), b.total_bytes());
        prop_assert_eq!(a.apps[0].issued, b.apps[0].issued);
    }

    #[test]
    fn completed_never_exceeds_issued_and_bytes_match(
        qd in 1u32..128,
        bs_shift in 12u32..17,
    ) {
        let mut s = Scenario::new("prop", 2, vec![DeviceSetup::flash()]);
        let g = s.add_cgroup("g");
        s.add_app(g, JobSpec::builder("j").block_size(1 << bs_shift).iodepth(qd).build());
        let r = s.run(SimTime::from_millis(80));
        prop_assert!(r.apps[0].completed <= r.apps[0].issued);
        prop_assert_eq!(r.apps[0].bytes, r.apps[0].completed * u64::from(1u32 << bs_shift));
        // The device never reports more service than what apps issued.
        prop_assert!(r.devices[0].served_ios <= r.apps[0].issued);
    }
}
