//! Cross-crate integration tests: cgroup knob files written through
//! `cgroup-sim` must produce the corresponding control behaviour end to
//! end through `ioqos`/`iosched-sim`/`nvme-sim`/`host-sim`.

use isol_bench_repro::bench_suite::{Knob, Scenario};
use isol_bench_repro::blkio::DeviceId;
use isol_bench_repro::host::DeviceSetup;
use isol_bench_repro::simcore::SimTime;
use isol_bench_repro::workload::{JobSpec, RwKind};

const RUN: SimTime = SimTime::from_millis(400);

#[test]
fn io_max_written_through_sysfs_grammar_limits_bandwidth() {
    let mut s = Scenario::new("t", 4, vec![DeviceSetup::flash()]);
    let g0 = s.add_cgroup("capped");
    let g1 = s.add_cgroup("free");
    s.add_app(g0, JobSpec::batch_app("capped"));
    s.add_app(g1, JobSpec::batch_app("free"));
    // The exact string a container runtime would write.
    s.hierarchy_mut()
        .write(g0, "io.max", "259:0 rbps=104857600")
        .unwrap();
    let r = s.run(RUN);
    let capped = r.apps[0].mean_mib_s;
    let free = r.apps[1].mean_mib_s;
    assert!((80.0..130.0).contains(&capped), "capped {capped} MiB/s");
    assert!(free > 5.0 * capped, "free {free} vs capped {capped}");
}

#[test]
fn iops_limits_are_request_size_agnostic() {
    let mut s = Scenario::new("t", 4, vec![DeviceSetup::flash()]);
    let g0 = s.add_cgroup("iops-capped");
    s.add_app(
        g0,
        JobSpec::builder("big")
            .block_size(256 * 1024)
            .iodepth(64)
            .build(),
    );
    s.hierarchy_mut()
        .write(g0, "io.max", "259:0 riops=1000")
        .unwrap();
    let r = s.run(RUN);
    let iops = r.apps[0].completed as f64 / RUN.as_secs_f64();
    assert!((700.0..1_300.0).contains(&iops), "iops {iops}");
}

#[test]
fn prio_class_hierarchy_to_scheduler_pipeline() {
    // Three classes, device-saturating large reads; bandwidth must be
    // ordered rt > be > idle with MQ-DL attached.
    let mut s = Scenario::new(
        "t",
        6,
        vec![DeviceSetup::flash().with_scheduler(isol_bench_repro::sched::SchedKind::MqDeadline)],
    );
    let names = ["rt", "be", "idle"];
    let mut groups = Vec::new();
    for n in names {
        let g = s.add_cgroup(n);
        s.add_app(g, JobSpec::builder(n).block_size(65536).iodepth(64).build());
        groups.push(g);
    }
    for (g, class) in groups.iter().zip(["rt", "best-effort", "idle"]) {
        s.hierarchy_mut().write(*g, "io.prio.class", class).unwrap();
    }
    let r = s.run(RUN);
    let bw: Vec<f64> = r.apps.iter().map(|a| a.mean_mib_s).collect();
    assert!(bw[0] > bw[1], "rt {} vs be {}", bw[0], bw[1]);
    assert!(bw[1] > bw[2], "be {} vs idle {}", bw[1], bw[2]);
    assert!(bw[2] < 0.2 * bw[0], "idle should be near-starved: {bw:?}");
}

#[test]
fn bfq_weights_written_as_strings_control_shares() {
    let mut s = Scenario::new(
        "t",
        6,
        vec![DeviceSetup::flash().with_scheduler(isol_bench_repro::sched::SchedKind::Bfq)],
    );
    let g0 = s.add_cgroup("heavy");
    let g1 = s.add_cgroup("light");
    // Sequential streams so BFQ's anticipatory machinery applies.
    for (g, n) in [(g0, "heavy"), (g1, "light")] {
        s.add_app(
            g,
            JobSpec::builder(n)
                .rw(RwKind::SeqRead)
                .block_size(65536)
                .iodepth(32)
                .build(),
        );
    }
    s.hierarchy_mut()
        .write(g0, "io.bfq.weight", "default 800")
        .unwrap();
    s.hierarchy_mut()
        .write(g1, "io.bfq.weight", "default 100")
        .unwrap();
    let r = s.run(RUN);
    let ratio = r.apps[0].mean_mib_s / r.apps[1].mean_mib_s;
    assert!(ratio > 2.0, "heavy/light ratio {ratio}");
}

#[test]
fn io_latency_protects_after_windows_converge() {
    let mut s = Scenario::new("t", 6, vec![DeviceSetup::flash()]);
    let prio = s.add_cgroup("prio");
    let be = s.add_cgroup("be");
    s.add_app(prio, JobSpec::lc_app("prio"));
    for i in 0..4 {
        s.add_app(be, JobSpec::be_app(&format!("be-{i}")));
    }
    s.hierarchy_mut()
        .write(prio, "io.latency", "259:0 target=150")
        .unwrap();
    // Long enough for ~10 windows of 500 ms.
    s.set_warmup(SimTime::from_secs(5));
    let r = s.run(SimTime::from_secs(6));
    let p99 = r.apps[0].latency.p99_us;
    assert!(p99 < 600.0, "protected LC P99 after convergence: {p99} us");
}

#[test]
fn iocost_full_config_through_root_files() {
    let mut s = Scenario::new("t", 6, vec![DeviceSetup::flash()]);
    let a = s.add_cgroup("a");
    let b = s.add_cgroup("b");
    s.add_app(a, JobSpec::batch_app("a"));
    s.add_app(b, JobSpec::batch_app("b"));
    let root = isol_bench_repro::cgroup::Hierarchy::ROOT;
    s.hierarchy_mut()
        .write(
            root,
            "io.cost.model",
            "259:0 ctrl=user rbps=2500000000 rseqiops=300000 rrandiops=300000 \
             wbps=1000000000 wseqiops=60000 wrandiops=60000",
        )
        .unwrap();
    s.hierarchy_mut()
        .write(
            root,
            "io.cost.qos",
            "259:0 enable=1 ctrl=user rpct=0.00 rlat=0 wpct=0.00 wlat=0 min=100.00 max=100.00",
        )
        .unwrap();
    s.hierarchy_mut()
        .write(a, "io.weight", "default 600")
        .unwrap();
    s.hierarchy_mut()
        .write(b, "io.weight", "default 100")
        .unwrap();
    let r = s.run(RUN);
    let ratio = r.apps[0].mean_mib_s / r.apps[1].mean_mib_s;
    assert!(ratio > 2.0, "io.weight 600:100 ratio {ratio}");
    // The model caps aggregate around 300k IOPS ≈ 1.14 GiB/s.
    let agg = r.aggregate_gib_s();
    assert!(
        (0.7..1.5).contains(&agg),
        "model-capped aggregate {agg} GiB/s"
    );
}

#[test]
fn optane_profile_generalizes_iocost_weights() {
    let mut s = Scenario::new("t", 6, vec![Knob::IoCost.device_setup_optane()]);
    let a = s.add_cgroup("a");
    let b = s.add_cgroup("b");
    s.add_app(a, JobSpec::batch_app("a"));
    s.add_app(b, JobSpec::batch_app("b"));
    Knob::IoCost.configure_weights(&mut s, &[a, b], &[400, 100]);
    let r = s.run(RUN);
    assert!(
        r.apps[0].mean_mib_s > 1.5 * r.apps[1].mean_mib_s,
        "weights should hold on optane too: {} vs {}",
        r.apps[0].mean_mib_s,
        r.apps[1].mean_mib_s
    );
}

#[test]
fn multi_device_knob_lines_are_per_device() {
    let mut s = Scenario::new("t", 6, vec![DeviceSetup::flash(), DeviceSetup::flash()]);
    let g = s.add_cgroup("spread");
    // One app per device, same cgroup: the io.max line for 259:0 must
    // cap only the first app's device.
    s.add_app_on(g, JobSpec::batch_app("on-dev0"), vec![DeviceId(0)]);
    s.add_app_on(g, JobSpec::batch_app("on-dev1"), vec![DeviceId(1)]);
    s.hierarchy_mut()
        .write(g, "io.max", "259:0 rbps=52428800")
        .unwrap();
    let r = s.run(RUN);
    assert!(
        r.devices[1].served_bytes > 3 * r.devices[0].served_bytes,
        "only device 0 is capped: {:?}",
        r.devices.iter().map(|d| d.served_bytes).collect::<Vec<_>>()
    );
    // A single round-robin submitter, in contrast, head-of-line blocks
    // on its throttled device — both devices slow down together, as a
    // real QD-bound submitter would.
}

#[test]
fn bursty_job_windows_show_in_series() {
    let mut s = Scenario::new("t", 2, vec![DeviceSetup::flash()]);
    s.set_bw_window(isol_bench_repro::simcore::SimDuration::from_millis(10));
    let g = s.add_cgroup("bursty");
    s.add_app(
        g,
        JobSpec::builder("bursty")
            .iodepth(16)
            .burst(
                isol_bench_repro::simcore::SimDuration::from_millis(50),
                isol_bench_repro::simcore::SimDuration::from_millis(50),
            )
            .build(),
    );
    let r = s.run(RUN);
    let pts = r.apps[0].series.points();
    let active = pts.iter().filter(|p| p.mib_s > 1.0).count();
    let silent = pts.iter().filter(|p| p.mib_s <= 1.0).count();
    assert!(
        active > 0 && silent > 0,
        "duty cycle visible: {active} on / {silent} off"
    );
}

#[test]
fn reports_are_deterministic_across_identical_runs() {
    let build = || {
        let mut s = Scenario::new("t", 4, vec![DeviceSetup::flash()]);
        let g0 = s.add_cgroup("a");
        let g1 = s.add_cgroup("b");
        s.add_app(g0, JobSpec::batch_app("a"));
        s.add_app(g1, JobSpec::lc_app("b"));
        s.hierarchy_mut()
            .write(g0, "io.max", "259:0 rbps=524288000")
            .unwrap();
        s.run(SimTime::from_millis(200))
    };
    let r1 = build();
    let r2 = build();
    assert_eq!(r1.total_bytes(), r2.total_bytes());
    assert_eq!(r1.apps[1].latency.p99_us, r2.apps[1].latency.p99_us);
    assert_eq!(r1.apps[0].completed, r2.apps[0].completed);
}
