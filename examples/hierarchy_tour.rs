//! A tour of the cgroup-v2 hierarchy semantics (the paper's Fig. 1).
//!
//! Builds the figure's tree, demonstrates the management/process-group
//! rule, the root-only `io.cost` files, the non-inheritable
//! `io.prio.class`, and the kernel knob-file grammars — including the
//! errors cgroupfs would return.
//!
//! Run with: `cargo run --example hierarchy_tour`

use isol_bench_repro::blkio::AppId;
use isol_bench_repro::cgroup::{CgroupError, DevNode, Hierarchy};

fn main() -> Result<(), CgroupError> {
    let mut h = Hierarchy::new();

    // Fig. 1: root -> controller.slice (+io) -> three services.
    let slice = h.create(Hierarchy::ROOT, "controller.slice")?;
    h.enable_io(slice)?; // "+io" in cgroup.subtree_control
    let a = h.create(slice, "container-a.service")?;
    let b = h.create(slice, "container-b.service")?;
    let no_io = h.create(Hierarchy::ROOT, "no-io.slice")?; // no +io
    let broken = h.create(no_io, "broken.service")?;

    println!("tree:");
    for g in [slice, a, b, no_io, broken] {
        println!("  {}", h.path(g)?);
    }

    // Management groups cannot hold processes...
    let err = h.attach_process(slice, AppId(0)).unwrap_err();
    println!("\nattach process to controller.slice -> {err}");
    // ...process groups can.
    h.attach_process(a, AppId(0))?;
    println!("attach process to container-a.service -> ok");
    // ...and a group with processes cannot become a management group.
    let err = h.enable_io(a).unwrap_err();
    println!("enable +io on container-a.service -> {err}");

    // Knobs need the parent's +io: broken.service has none.
    let err = h.write(broken, "io.max", "259:0 rbps=1048576").unwrap_err();
    println!("write io.max in broken.service -> {err}");

    // io.cost.* is root-only.
    let err = h
        .write(a, "io.cost.qos", "259:0 enable=1 min=50 max=100")
        .unwrap_err();
    println!("write io.cost.qos in a child -> {err}");
    h.write(
        Hierarchy::ROOT,
        "io.cost.model",
        "259:0 ctrl=user rbps=2464424576 rseqiops=97620 rrandiops=93364 \
         wbps=1186341888 wseqiops=25184 wrandiops=25184",
    )?;
    println!("write io.cost.model in root -> ok");

    // Kernel value grammars parse and render back.
    h.write(
        a,
        "io.max",
        "259:0 rbps=1572864000 wbps=max riops=max wiops=max",
    )?;
    println!("\ncontainer-a io.max  = {}", h.read(a, "io.max")?);
    h.write(a, "io.weight", "default 250")?;
    println!("container-a io.weight = {}", h.read(a, "io.weight")?);
    h.write(a, "io.prio.class", "rt")?;
    println!(
        "container-a io.prio.class = {}",
        h.read(a, "io.prio.class")?
    );

    // io.prio.class is NOT inheritable: a child reads the default.
    h.write(b, "io.prio.class", "idle")?;
    let b_child = h.create(b, "worker")?;
    println!(
        "b io.prio.class = {}, b/worker effective = {} (not inherited)",
        h.prio_class(b),
        h.prio_class(b_child)
    );

    // Effective (hierarchical) io.max: parent limits bind children.
    h.write(slice, "io.max", "259:0 rbps=1048576")?;
    let eff = h.io_max(a, DevNode::nvme(0));
    println!(
        "\neffective rbps for container-a: {} (parent 1 MiB/s cap wins over its own 1.5 GB/s)",
        eff.rbps.unwrap()
    );
    Ok(())
}
