//! Noisy neighbor: protect a latency-critical cache from a batch tenant.
//!
//! The motivating scenario of the paper's introduction: a cache
//! (LC-app, QD-1 4 KiB random reads, strict P99) shares an NVMe SSD
//! with a best-effort archiver that saturates the device. We measure
//! the cache's P99 with no control, then under each cgroup knob's
//! protective configuration, and print the utilization price of each.
//!
//! Run with: `cargo run --release --example noisy_neighbor`

use isol_bench_repro::bench_suite::{Knob, Scenario};
use isol_bench_repro::blkio::PrioClass;
use isol_bench_repro::cgroup::{DevNode, IoCostQos, IoLatency, IoMax, IoWeight, Knob as KnobWrite};
use isol_bench_repro::simcore::SimTime;
use isol_bench_repro::stats::Table;
use isol_bench_repro::workload::JobSpec;

fn run_case(knob: Knob) -> (f64, f64, String) {
    let mut s = Scenario::new("noisy", 10, vec![knob.device_setup(false)]);
    let cache = s.add_cgroup("cache");
    let archiver = s.add_cgroup("archiver");
    s.add_app(cache, JobSpec::lc_app("cache"));
    for i in 0..4 {
        s.add_app(archiver, JobSpec::be_app(&format!("archiver-{i}")));
    }

    // Each knob's natural protective configuration.
    let dev = DevNode::nvme(0);
    match knob {
        Knob::None => {}
        Knob::MqDlPrio => {
            s.hierarchy_mut()
                .apply(cache, KnobWrite::PrioClass(PrioClass::Realtime))
                .unwrap();
            s.hierarchy_mut()
                .apply(archiver, KnobWrite::PrioClass(PrioClass::Idle))
                .unwrap();
        }
        Knob::BfqWeight => {
            let w = IoWeight {
                default: 1000,
                ..IoWeight::default()
            };
            s.hierarchy_mut()
                .apply(
                    cache,
                    KnobWrite::BfqWeight(isol_bench_repro::cgroup::BfqWeight(w)),
                )
                .unwrap();
        }
        Knob::IoMax => {
            // Cap the archiver at 800 MiB/s.
            let m = IoMax {
                rbps: Some(800 << 20),
                ..IoMax::default()
            };
            s.hierarchy_mut()
                .apply(archiver, KnobWrite::Max(dev, m))
                .unwrap();
        }
        Knob::IoLatency => {
            s.hierarchy_mut()
                .apply(cache, KnobWrite::Latency(dev, IoLatency { target_us: 150 }))
                .unwrap();
        }
        Knob::IoCost => {
            let model = Knob::generated_model(&s.devices_mut()[0].profile.clone());
            let qos = IoCostQos {
                enable: true,
                ctrl: isol_bench_repro::cgroup::CostCtrl::User,
                rpct: 99.0,
                rlat_us: 250,
                wpct: 0.0,
                wlat_us: 0,
                min_pct: 25.0,
                max_pct: 100.0,
            };
            let root = isol_bench_repro::cgroup::Hierarchy::ROOT;
            s.hierarchy_mut()
                .apply(root, KnobWrite::CostModel(dev, model))
                .unwrap();
            s.hierarchy_mut()
                .apply(root, KnobWrite::CostQos(dev, qos))
                .unwrap();
            let w = IoWeight {
                default: 10_000,
                ..IoWeight::default()
            };
            s.hierarchy_mut()
                .apply(cache, KnobWrite::Weight(w))
                .unwrap();
        }
    }

    let report = s.run(SimTime::from_secs(2));
    let stages = report.apps[0].stages;
    (
        report.apps[0].latency.p99_us,
        report.aggregate_gib_s(),
        format!(
            "{} ({:.0} of {:.0} us)",
            stages.dominant_stage(),
            match stages.dominant_stage() {
                "submit-cpu" => stages.submit_cpu_us,
                "qos-wait" => stages.qos_wait_us,
                "sched-wait" => stages.sched_wait_us,
                "device" => stages.device_us,
                _ => stages.complete_cpu_us,
            },
            stages.total_us()
        ),
    )
}

fn main() {
    let mut t = Table::new(vec![
        "knob",
        "cache P99 (us)",
        "aggregate GiB/s",
        "cache latency dominated by",
    ]);
    let mut baseline = 0.0;
    for knob in Knob::ALL {
        let (p99, agg, dominant) = run_case(knob);
        if knob == Knob::None {
            baseline = p99;
        }
        t.row(vec![
            knob.label().to_owned(),
            format!("{p99:.1}"),
            format!("{agg:.2}"),
            dominant,
        ]);
    }
    println!("{}", t.render());
    println!(
        "The LC cache suffers ~{baseline:.0} us P99 next to an unthrottled archiver; \
         compare each knob's protection and its utilization price."
    );
}
