//! Knob showcase: regenerate the paper's Fig. 2 time-series panels.
//!
//! Three staggered, rate-capped tenants (A/B/C) run under each of the
//! eight knob configurations; the example prints an ASCII
//! bandwidth-over-time sketch per panel so the knobs' signatures are
//! visible in the terminal: MQ-DL's starvation, BFQ's weighted but
//! unstable shares, io.max's static caps, io.latency's slow recovery,
//! io.cost's work-conserving weights.
//!
//! Run with: `cargo run --release --example knob_showcase`

use isol_bench_repro::bench_suite::experiments::fig2;
use isol_bench_repro::bench_suite::{Fidelity, OutputSink};

/// Renders one app's series as a tiny ASCII sparkline.
fn sparkline(values: &[f64], max: f64) -> String {
    const GLYPHS: [char; 6] = [' ', '.', ':', '-', '=', '#'];
    values
        .iter()
        .map(|&v| {
            let lvl = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[lvl.min(GLYPHS.len() - 1)]
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    println!("Regenerating Fig. 2 (this runs 8 simulations)...\n");
    let result = fig2::run(Fidelity::Standard, &mut OutputSink::quiet())?;
    for panel in &result.panels {
        let max = panel
            .rows
            .iter()
            .flat_map(|r| [r.a_mib_s, r.b_mib_s, r.c_mib_s])
            .fold(1.0, f64::max);
        println!("({}) {}  [peak {:.0} MiB/s]", panel.tag, panel.label, max);
        for (name, pick) in [("A", 0usize), ("B", 1), ("C", 2)] {
            let vals: Vec<f64> = panel
                .rows
                .iter()
                .map(|r| match pick {
                    0 => r.a_mib_s,
                    1 => r.b_mib_s,
                    _ => r.c_mib_s,
                })
                .collect();
            println!("  {name} |{}|", sparkline(&vals, max));
        }
        println!();
    }
    println!("Phase units: A runs 0-5, B runs 1-7, C runs 2-5 (x10 columns).");
    Ok(())
}
