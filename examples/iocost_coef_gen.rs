//! `iocost_coef_gen` — the analogue of the kernel's
//! `tools/cgroup/iocost_coef_gen.py` (§III): derives the `io.cost.model`
//! line for a device and shows how to install it in a hierarchy.
//!
//! Run with: `cargo run --example iocost_coef_gen [flash|optane]`

use isol_bench_repro::bench_suite::Knob;
use isol_bench_repro::cgroup::{DevNode, Hierarchy};
use isol_bench_repro::nvme::DeviceProfile;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "flash".to_owned());
    let profile = match which.as_str() {
        "optane" => DeviceProfile::optane(),
        _ => DeviceProfile::flash(),
    };
    println!("# device: {}", profile.name);

    // Raw saturated coefficients (what a perfect measurement would see).
    let raw = profile.iocost_coefficients();
    println!("# raw saturated coefficients:");
    println!("#   {raw}");

    // What the generator script emits (conservative probes), as the
    // paper's 2.3 GiB/s model was for a 2.94 GiB/s device.
    let model = Knob::generated_model(&profile);
    println!("# generated model (coef_gen-conservative):");
    let dev = DevNode::nvme(0);
    let line = format!("{dev} {model}");
    println!("{line}");
    println!(
        "#   read saturation: {:.2} GiB/s random ({} IOPS x 4 KiB)",
        model.rrandiops as f64 * 4096.0 / (1u64 << 30) as f64,
        model.rrandiops
    );

    // Install it exactly as a sysfs write.
    let mut h = Hierarchy::new();
    h.write(Hierarchy::ROOT, "io.cost.model", &line)
        .expect("root write");
    h.write(
        Hierarchy::ROOT,
        "io.cost.qos",
        &format!(
            "{dev} enable=1 ctrl=user rpct=95.00 rlat=100 wpct=95.00 wlat=500 min=50.00 max=100.00"
        ),
    )
    .expect("root write");
    println!("# installed; reading back:");
    println!(
        "io.cost.model = {}",
        h.read(Hierarchy::ROOT, "io.cost.model").unwrap()
    );
    println!(
        "io.cost.qos   = {}",
        h.read(Hierarchy::ROOT, "io.cost.qos").unwrap()
    );
}
