//! Quickstart: two tenants, one NVMe SSD, io.cost weights.
//!
//! Builds a cgroup hierarchy, gives tenant A twice tenant B's
//! `io.weight`, runs one simulated second, and prints what each tenant
//! got — the core isol-bench workflow in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use isol_bench_repro::bench_suite::{Knob, Scenario};
use isol_bench_repro::simcore::SimTime;
use isol_bench_repro::stats::{weighted_jain_index, Table};
use isol_bench_repro::workload::JobSpec;

fn main() {
    // One 10-core host with a flash SSD (no I/O scheduler; io.cost does
    // the control).
    let mut s = Scenario::new("quickstart", 10, vec![Knob::IoCost.device_setup(false)]);

    // Two tenants, each a cgroup with one throughput-hungry batch app.
    let tenant_a = s.add_cgroup("tenant-a");
    let tenant_b = s.add_cgroup("tenant-b");
    s.add_app(tenant_a, JobSpec::batch_app("a"));
    s.add_app(tenant_b, JobSpec::batch_app("b"));

    // io.cost with a generated device model; A gets weight 200, B 100.
    Knob::IoCost.configure_weights(&mut s, &[tenant_a, tenant_b], &[200, 100]);

    // The hierarchy is real cgroup-v2 surface: read the knob files back.
    println!(
        "root io.cost.model = {}",
        s.hierarchy()
            .read(cgroup_sim_root(), "io.cost.model")
            .unwrap()
    );

    let report = s.run(SimTime::from_secs(1));

    let mut t = Table::new(vec!["tenant", "weight", "MiB/s", "P99 (us)"]);
    for (app, weight) in report.apps.iter().zip([200u32, 100]) {
        t.row(vec![
            app.name.clone(),
            weight.to_string(),
            format!("{:.0}", app.mean_mib_s),
            format!("{:.1}", app.latency.p99_us),
        ]);
    }
    println!("{}", t.render());

    let jain = weighted_jain_index(&[
        (report.apps[0].mean_mib_s, 200.0),
        (report.apps[1].mean_mib_s, 100.0),
    ]);
    println!("weighted Jain fairness index: {jain:.3}");
    println!("aggregate bandwidth: {:.2} GiB/s", report.aggregate_gib_s());
    assert!(
        report.apps[0].mean_mib_s > report.apps[1].mean_mib_s,
        "weight 200 should beat weight 100"
    );
}

fn cgroup_sim_root() -> isol_bench_repro::blkio::GroupId {
    isol_bench_repro::cgroup::Hierarchy::ROOT
}
