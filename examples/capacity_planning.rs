//! Capacity planning: how many LC tenants fit on one core and one SSD?
//!
//! A practitioner's use of isol-bench beyond the paper's figures:
//! sweep the number of latency-critical tenants under the two
//! production-grade knobs (`none` as baseline, `io.cost` as the paper's
//! recommendation) and find the co-location level where the P99 SLO
//! (300 µs) breaks.
//!
//! Run with: `cargo run --release --example capacity_planning`

use isol_bench_repro::bench_suite::{Knob, Scenario};
use isol_bench_repro::simcore::SimTime;
use isol_bench_repro::stats::Table;
use isol_bench_repro::workload::JobSpec;

const SLO_P99_US: f64 = 300.0;

fn p99_at(knob: Knob, tenants: usize) -> f64 {
    let mut s = Scenario::new("capacity", 1, vec![knob.device_setup(true)]);
    let groups: Vec<_> = (0..tenants)
        .map(|i| s.add_cgroup(&format!("t-{i}")))
        .collect();
    for (i, &g) in groups.iter().enumerate() {
        s.add_app(g, JobSpec::lc_app(&format!("lc-{i}")));
    }
    knob.configure_overhead_mode(&mut s, &groups);
    let report = s.run(SimTime::from_millis(800));
    // Worst tenant's P99 (an SLO is per-tenant, not on the average).
    report
        .apps
        .iter()
        .map(|a| a.latency.p99_us)
        .fold(0.0, f64::max)
}

fn main() {
    let counts = [1usize, 2, 4, 8, 12, 16, 24, 32];
    let mut t = Table::new(vec!["tenants", "none P99 (us)", "io.cost P99 (us)"]);
    let mut fit = [None::<usize>; 2];
    for &n in &counts {
        let none = p99_at(Knob::None, n);
        let cost = p99_at(Knob::IoCost, n);
        for (slot, p99) in fit.iter_mut().zip([none, cost]) {
            if p99 <= SLO_P99_US {
                *slot = Some(n);
            }
        }
        t.row(vec![
            n.to_string(),
            format!("{none:.0}"),
            format!("{cost:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Largest co-location meeting a {SLO_P99_US:.0} us P99 SLO on one core: \
         none = {} tenants, io.cost = {} tenants.",
        fit[0].map_or("0".into(), |n| n.to_string()),
        fit[1].map_or("0".into(), |n| n.to_string()),
    );
    println!(
        "(io.cost's per-I/O accounting costs CPU, so it fits fewer QD-1 tenants \
         per core once the CPU is the bottleneck — the paper's O1.)"
    );
}
